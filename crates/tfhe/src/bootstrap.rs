//! Programmable bootstrapping — the paper's Algorithm 2.
//!
//! `ModSwitch → Blind Rotation (n_lwe CMUXes of external products) →
//! SampleExtract → TFHE KeySwitch`. This is the operation Trinity's
//! Table VII benchmarks (PBS throughput under Sets I–III) and the NN-x
//! benchmarks chain thousands of times.

use std::sync::Arc;

use fhe_math::Modulus;
use rand::Rng;

use crate::ggsw::{Ggsw, MulBackend};
use crate::glwe::{GlweCiphertext, GlweSecretKey};
use crate::lwe::{LweCiphertext, LweKeySwitchKey, LweSecretKey};
use crate::params::TfheParams;
use crate::ring::TfheRing;

/// Shared immutable TFHE state: parameters plus the ring.
#[derive(Debug, Clone)]
pub struct TfheContext {
    /// Parameter set.
    pub params: TfheParams,
    /// The negacyclic ring (modulus = closest prime to `2^q_bits`).
    pub ring: Arc<TfheRing>,
}

impl TfheContext {
    /// Builds the ring for a parameter set.
    pub fn new(params: TfheParams) -> Self {
        let ring = Arc::new(TfheRing::new(params.n, params.q_bits));
        Self { params, ring }
    }

    /// The LWE/GLWE modulus.
    pub fn q(&self) -> &Modulus {
        self.ring.modulus()
    }

    /// Encodes a boolean as `±q/8`.
    pub fn encode_bit(&self, bit: bool) -> u64 {
        let q = self.q().value();
        if bit {
            q / 8
        } else {
            q - q / 8
        }
    }

    /// Decodes a phase to a boolean (`true` when the phase lies in the
    /// upper half-plane `(0, q/2)`).
    pub fn decode_bit(&self, phase: u64) -> bool {
        phase < self.q().value() / 2
    }

    /// Encodes a message `m in [0, t)` at the centre of its half-torus
    /// window (for LUT bootstrapping).
    ///
    /// # Panics
    ///
    /// Panics if `m >= t`.
    pub fn encode_message(&self, m: u64, t: u64) -> u64 {
        assert!(m < t);
        let q = self.q().value() as u128;
        ((2 * m as u128 + 1) * q / (4 * t as u128)) as u64
    }

    /// Decodes a phase back to a message in `[0, t)` (half-torus
    /// convention matching [`Self::encode_message`]): window `m` covers
    /// phases `[m*q/2t, (m+1)*q/2t)`.
    pub fn decode_message(&self, phase: u64, t: u64) -> u64 {
        let q = self.q().value() as u128;
        let m = (phase as u128 * 2 * t as u128) / q;
        (m as u64).min(t - 1)
    }
}

/// Client-side key material.
#[derive(Debug)]
pub struct ClientKey {
    /// Context.
    pub ctx: TfheContext,
    /// Small-dimension LWE secret (ciphertexts live here).
    pub lwe_sk: LweSecretKey,
    /// GLWE secret used inside bootstrapping.
    pub glwe_sk: GlweSecretKey,
}

impl ClientKey {
    /// Generates fresh client keys.
    pub fn generate<R: Rng + ?Sized>(ctx: TfheContext, rng: &mut R) -> Self {
        let lwe_sk = LweSecretKey::generate(ctx.params.n_lwe, rng);
        let glwe_sk = GlweSecretKey::generate(ctx.params.k, ctx.params.n, rng);
        Self {
            ctx,
            lwe_sk,
            glwe_sk,
        }
    }

    /// Encrypts a boolean.
    pub fn encrypt_bit<R: Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> LweCiphertext {
        LweCiphertext::encrypt(
            self.ctx.q(),
            &self.lwe_sk,
            self.ctx.encode_bit(bit),
            self.ctx.params.lwe_noise,
            rng,
        )
    }

    /// Decrypts a boolean.
    pub fn decrypt_bit(&self, ct: &LweCiphertext) -> bool {
        self.ctx.decode_bit(ct.phase(self.ctx.q(), &self.lwe_sk))
    }

    /// Encrypts a message in `[0, t)` (half-torus encoding).
    pub fn encrypt_message<R: Rng + ?Sized>(&self, m: u64, t: u64, rng: &mut R) -> LweCiphertext {
        LweCiphertext::encrypt(
            self.ctx.q(),
            &self.lwe_sk,
            self.ctx.encode_message(m, t),
            self.ctx.params.lwe_noise,
            rng,
        )
    }

    /// Decrypts a message in `[0, t)`.
    pub fn decrypt_message(&self, ct: &LweCiphertext, t: u64) -> u64 {
        self.ctx
            .decode_message(ct.phase(self.ctx.q(), &self.lwe_sk), t)
    }
}

/// Server-side key material: bootstrapping key + keyswitching key.
#[derive(Debug)]
pub struct ServerKey {
    /// Context.
    pub ctx: TfheContext,
    /// One GGSW per LWE secret bit (`bsk`).
    pub bsk: Vec<Ggsw>,
    /// Keyswitch from the extracted dimension `k*N` back to `n_lwe`.
    pub ksk: LweKeySwitchKey,
    /// Which multiplication backend the bsk was prepared for.
    pub backend: MulBackend,
}

impl ServerKey {
    /// Generates server keys from client keys.
    pub fn generate<R: Rng + ?Sized>(ck: &ClientKey, backend: MulBackend, rng: &mut R) -> Self {
        let ctx = ck.ctx.clone();
        let p = &ctx.params;
        let bsk = ck
            .lwe_sk
            .s
            .iter()
            .map(|&si| {
                Ggsw::encrypt_scalar(
                    &ctx.ring,
                    &ck.glwe_sk,
                    si as u64,
                    p.lb,
                    p.bg_log,
                    p.glwe_noise,
                    backend,
                    rng,
                )
            })
            .collect();
        let extracted = ck.glwe_sk.extracted_lwe_key();
        let ksk = LweKeySwitchKey::generate(
            ctx.q(),
            &extracted,
            &ck.lwe_sk,
            p.ks_base_log,
            p.lk,
            p.lwe_noise,
            rng,
        );
        Self {
            ctx,
            bsk,
            ksk,
            backend,
        }
    }

    /// Measured heap bytes of the server-side key material (allocated
    /// `Vec` capacities of the bootstrap key's GGSW rows and the
    /// keyswitch key) — the per-tenant number a byte-budgeted key cache
    /// evicts by, pinned against manual capacity sums by
    /// `tests::key_bytes_pins_to_manual_capacity_sums`.
    pub fn key_bytes(&self) -> usize {
        self.bsk.capacity() * std::mem::size_of::<Ggsw>()
            + self.bsk.iter().map(Ggsw::heap_bytes).sum::<usize>()
            + self.ksk.heap_bytes()
    }

    /// Blind rotation (Algorithm 2 lines 2–12): rotates the test vector
    /// by the encrypted phase through `n_lwe` CMUXes.
    pub fn blind_rotate(&self, a_tilde: &[u64], b_tilde: u64, tv: &[u64]) -> GlweCiphertext {
        let ring = &self.ctx.ring;
        let k = self.ctx.params.k;
        let init = ring.mul_monomial(tv, -(b_tilde as i64));
        let mut acc = GlweCiphertext::trivial(ring, k, init);
        for (i, &ai) in a_tilde.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let rotated = acc.rotate(ring, ai as i64);
            acc = self.bsk[i].cmux(ring, &acc, &rotated);
        }
        acc
    }

    /// Batched blind rotation: each job rotates its own test vector by
    /// its own mod-switched phase under its own bootstrapping key, but
    /// the `n_lwe` CMUX steps run in lockstep so every step's external
    /// products coalesce into one wide [`Ggsw::external_product_batch`]
    /// call — the MATCHA batching shape: k independent gate bootstraps
    /// through one kernel dispatch per step.
    ///
    /// Per job the arithmetic is exactly [`Self::blind_rotate`]'s
    /// (`acc <- acc + bsk[i] ⊡ (rotate(acc, a_i) - acc)` for the same
    /// non-zero `a_i` in the same order), so each output is
    /// bit-identical to the sequential call.
    ///
    /// All jobs must share the parameter set and ring modulus (their
    /// rings then hold identical NTT tables; the first job's ring drives
    /// the batch) and use the NTT backend.
    ///
    /// # Panics
    ///
    /// Panics if jobs disagree on parameters or modulus, or any key was
    /// prepared for the FFT backend.
    pub fn blind_rotate_batch(
        jobs: &[(&ServerKey, &[u64], u64)],
        tv: &[u64],
    ) -> Vec<GlweCiphertext> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let head = jobs[0].0;
        assert!(
            jobs.iter().all(|(sk, ..)| sk.backend == MulBackend::Ntt
                && sk.ctx.params == head.ctx.params
                && sk.ctx.ring.q() == head.ctx.ring.q()),
            "blind_rotate_batch requires NTT keys sharing one parameter set and modulus"
        );
        let ring = &head.ctx.ring;
        let k = head.ctx.params.k;
        let mut accs: Vec<GlweCiphertext> = jobs
            .iter()
            .map(|&(_, _, b_tilde)| {
                GlweCiphertext::trivial(ring, k, ring.mul_monomial(tv, -(b_tilde as i64)))
            })
            .collect();
        for i in 0..head.ctx.params.n_lwe {
            // Jobs whose i-th switched mask coefficient is zero skip
            // this CMUX, exactly as in the sequential rotation.
            let mut active = Vec::with_capacity(jobs.len());
            let mut diffs = Vec::with_capacity(jobs.len());
            for (j, &(_, a_tilde, _)) in jobs.iter().enumerate() {
                let ai = a_tilde[i];
                if ai == 0 {
                    continue;
                }
                let mut diff = accs[j].rotate(ring, ai as i64);
                diff.sub_assign(ring, &accs[j]);
                active.push(j);
                diffs.push(diff);
            }
            if active.is_empty() {
                continue;
            }
            let ep_jobs: Vec<(&Ggsw, &GlweCiphertext)> = active
                .iter()
                .zip(&diffs)
                .map(|(&j, diff)| (&jobs[j].0.bsk[i], diff))
                .collect();
            let outs = Ggsw::external_product_batch(ring, &ep_jobs);
            for (&j, mut out) in active.iter().zip(outs) {
                out.add_assign(ring, &accs[j]);
                accs[j] = out;
            }
        }
        accs
    }

    /// Programmable bootstrap *without* the final TFHE keyswitch: the
    /// result stays under the extracted GLWE key (dimension `k * N`)
    /// and carries only the blind-rotation noise.
    ///
    /// Scheme-conversion pipelines aggregate and convert from this form
    /// (the TFHE keyswitch would add noise the conversion budget cannot
    /// afford); chain [`crate::lwe::LweKeySwitchKey::switch`] to return
    /// to the small key.
    pub fn bootstrap_with_tv_unswitched(&self, ct: &LweCiphertext, tv: &[u64]) -> LweCiphertext {
        let two_n = 2 * self.ctx.params.n as u64;
        let (a_tilde, b_tilde) = ct.mod_switch(self.ctx.q(), two_n);
        let acc = self.blind_rotate(&a_tilde, b_tilde, tv);
        acc.sample_extract(&self.ctx.ring, 0)
    }

    /// Full programmable bootstrap with an explicit test vector.
    ///
    /// Returns a fresh LWE ciphertext of dimension `n_lwe` whose phase is
    /// the test-vector coefficient selected by the input phase.
    pub fn bootstrap_with_tv(&self, ct: &LweCiphertext, tv: &[u64]) -> LweCiphertext {
        let extracted = self.bootstrap_with_tv_unswitched(ct, tv);
        self.ksk.switch(self.ctx.q(), &extracted)
    }

    /// Sign bootstrap: phase in `[0, q/2)` maps to `+q/8`, the rest to
    /// `-q/8` (the gate-bootstrapping test vector).
    pub fn bootstrap_sign(&self, ct: &LweCiphertext) -> LweCiphertext {
        let q = self.ctx.q().value();
        let tv = vec![q / 8; self.ctx.params.n];
        self.bootstrap_with_tv(ct, &tv)
    }

    /// LUT bootstrap over the half-torus message space `[0, t)`:
    /// applies `m -> lut[m]` (outputs are raw torus points).
    ///
    /// # Panics
    ///
    /// Panics if `lut.len()` does not divide the ring degree.
    pub fn bootstrap_lut(&self, ct: &LweCiphertext, lut: &[u64]) -> LweCiphertext {
        self.bootstrap_with_tv(ct, &self.lut_test_vector(lut))
    }

    /// Predicate bootstrap: evaluates `m -> +amplitude` when
    /// `pred(m)` holds and `-amplitude` otherwise, over message space
    /// `[0, t)`. The result stays under the extracted GLWE key so
    /// predicate bits can be aggregated and scheme-converted without the
    /// TFHE keyswitch noise (the HE3DB filter pattern; see the
    /// `encrypted_db` example).
    pub fn bootstrap_predicate_unswitched(
        &self,
        ct: &LweCiphertext,
        t: u64,
        pred: impl Fn(u64) -> bool,
        amplitude: u64,
    ) -> LweCiphertext {
        let q = self.ctx.q();
        let lut: Vec<u64> = (0..t)
            .map(|m| if pred(m) { amplitude } else { q.neg(amplitude) })
            .collect();
        self.bootstrap_with_tv_unswitched(ct, &self.lut_test_vector(&lut))
    }

    /// Expands a `t`-entry LUT into the full test vector.
    ///
    /// # Panics
    ///
    /// Panics if `lut.len()` does not divide the ring degree.
    fn lut_test_vector(&self, lut: &[u64]) -> Vec<u64> {
        let n = self.ctx.params.n;
        let t = lut.len();
        assert!(n.is_multiple_of(t), "LUT size must divide N");
        let window = n / t;
        let mut tv = vec![0u64; n];
        for (m, &v) in lut.iter().enumerate() {
            tv[m * window..(m + 1) * window].fill(v);
        }
        tv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use std::sync::OnceLock;

    fn keys(params: TfheParams, backend: MulBackend, seed: u64) -> (ClientKey, ServerKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ck = ClientKey::generate(TfheContext::new(params), &mut rng);
        let sk = ServerKey::generate(&ck, backend, &mut rng);
        (ck, sk)
    }

    // Key generation dominates these tests, so each (param set, backend)
    // pair is generated once per test binary and shared: the per-case
    // #[test] fns below stay cheap (one or two bootstraps each) instead
    // of one monolithic test paying every case back to back.
    fn set_i_ntt() -> &'static (ClientKey, ServerKey) {
        static K: OnceLock<(ClientKey, ServerKey)> = OnceLock::new();
        K.get_or_init(|| keys(TfheParams::set_i(), MulBackend::Ntt, 111))
    }

    fn set_i_fft() -> &'static (ClientKey, ServerKey) {
        static K: OnceLock<(ClientKey, ServerKey)> = OnceLock::new();
        K.get_or_init(|| keys(TfheParams::set_i(), MulBackend::Fft, 114))
    }

    fn set_ii_ntt() -> &'static (ClientKey, ServerKey) {
        static K: OnceLock<(ClientKey, ServerKey)> = OnceLock::new();
        K.get_or_init(|| keys(TfheParams::set_ii(), MulBackend::Ntt, 115))
    }

    fn set_iii_ntt() -> &'static (ClientKey, ServerKey) {
        static K: OnceLock<(ClientKey, ServerKey)> = OnceLock::new();
        K.get_or_init(|| keys(TfheParams::set_iii(), MulBackend::Ntt, 116))
    }

    /// `key_bytes` must equal the manual sum of the underlying `Vec`
    /// capacities at every nesting level — the service key cache's
    /// eviction arithmetic depends on this accounting being honest.
    #[test]
    fn key_bytes_pins_to_manual_capacity_sums() {
        let (_, sk) = set_i_ntt();
        let manual_bsk: usize = sk.bsk.capacity() * std::mem::size_of::<Ggsw>()
            + sk.bsk.iter().map(Ggsw::heap_bytes).sum::<usize>();
        let manual_ksk = sk.ksk.rows.capacity()
            * std::mem::size_of::<Vec<crate::lwe::LweCiphertext>>()
            + sk.ksk
                .rows
                .iter()
                .map(|row| {
                    row.capacity() * std::mem::size_of::<crate::lwe::LweCiphertext>()
                        + row
                            .iter()
                            .map(|ct| ct.a.capacity() * std::mem::size_of::<u64>())
                            .sum::<usize>()
                })
                .sum::<usize>();
        assert_eq!(sk.key_bytes(), manual_bsk + manual_ksk);
        // A gate-bootstrapping key is megabytes of state — the reason
        // per-tenant admission is byte-budgeted, not count-budgeted.
        let p = &sk.ctx.params;
        let lwe_masks = p.n * p.k * p.lk * p.n_lwe * std::mem::size_of::<u64>();
        assert!(
            sk.key_bytes() > lwe_masks,
            "ksk masks alone are {lwe_masks} bytes"
        );
    }

    fn check_sign_bootstrap(bit: bool, seed: u64) {
        let (ck, sk) = set_i_ntt();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = ck.ctx.q().value();
        let ct = ck.encrypt_bit(bit, &mut rng);
        let boot = sk.bootstrap_sign(&ct);
        let phase = boot.phase(ck.ctx.q(), &ck.lwe_sk);
        let expect = ck.ctx.encode_bit(bit);
        let err = ck.ctx.q().to_centered(ck.ctx.q().sub(phase, expect)).abs();
        assert!(
            err < (q / 16) as i64,
            "bit {bit}: phase {phase} vs {expect}, err {err}"
        );
    }

    #[test]
    fn sign_bootstrap_refreshes_true() {
        check_sign_bootstrap(true, 1111);
    }

    #[test]
    fn sign_bootstrap_refreshes_false() {
        check_sign_bootstrap(false, 1112);
    }

    #[test]
    fn bootstrap_reduces_noise() {
        // Inject heavy noise, bootstrap, verify the output noise is small.
        let (ck, sk) = set_i_ntt();
        let mut rng = StdRng::seed_from_u64(112);
        let q = ck.ctx.q();
        let qv = q.value();
        let mut ct = ck.encrypt_bit(true, &mut rng);
        // Add noise worth q/32 — large but decodable.
        ct.b = q.add(ct.b, qv / 32);
        let boot = sk.bootstrap_sign(&ct);
        let phase = boot.phase(q, &ck.lwe_sk);
        let err = q.to_centered(q.sub(phase, ck.ctx.encode_bit(true))).abs();
        assert!(err < (qv / 32) as i64, "post-bootstrap error {err}");
    }

    fn check_lut_bootstrap(ms: std::ops::Range<u64>) {
        let (ck, sk) = set_i_ntt();
        let mut rng = StdRng::seed_from_u64(113 + ms.start);
        let t = 4u64;
        // LUT: m -> (3 - m) encoded in the half-torus.
        let lut: Vec<u64> = (0..t).map(|m| ck.ctx.encode_message(3 - m, t)).collect();
        for m in ms {
            let ct = ck.encrypt_message(m, t, &mut rng);
            let out = sk.bootstrap_lut(&ct, &lut);
            let got = ck.decrypt_message(&out, t);
            assert_eq!(got, 3 - m, "LUT({m})");
        }
    }

    #[test]
    fn lut_bootstrap_low_messages() {
        check_lut_bootstrap(0..2);
    }

    #[test]
    fn lut_bootstrap_high_messages() {
        check_lut_bootstrap(2..4);
    }

    fn check_predicate_bootstrap(ms: &[u64], seed: u64) {
        let (ck, sk) = set_iii_ntt();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = 16u64;
        let q = ck.ctx.q();
        let amplitude = q.value() / 32;
        let extracted = ck.glwe_sk.extracted_lwe_key();
        for &m in ms {
            let ct = ck.encrypt_message(m, t, &mut rng);
            let out = sk.bootstrap_predicate_unswitched(&ct, t, |x| x < 8, amplitude);
            let phase = q.to_centered(out.phase(q, &extracted));
            let got_true = phase > 0;
            assert_eq!(got_true, m < 8, "predicate(m={m})");
            // Amplitude preserved within the blind-rotate noise.
            assert!(
                (phase.unsigned_abs() as f64 / amplitude as f64 - 1.0).abs() < 0.5,
                "m={m}: phase {phase} vs +/-{amplitude}"
            );
        }
    }

    #[test]
    fn predicate_bootstrap_below_threshold() {
        check_predicate_bootstrap(&[0, 5], 117);
    }

    #[test]
    fn predicate_bootstrap_at_and_above_threshold() {
        check_predicate_bootstrap(&[8, 15], 118);
    }

    #[test]
    fn batched_blind_rotate_is_bit_identical_to_sequential() {
        let (ck, sk) = set_i_ntt();
        let mut rng = StdRng::seed_from_u64(119);
        let q = ck.ctx.q().value();
        let two_n = 2 * ck.ctx.params.n as u64;
        let tv = vec![q / 8; ck.ctx.params.n];
        let switched: Vec<(Vec<u64>, u64)> = [true, false, true]
            .iter()
            .map(|&bit| ck.encrypt_bit(bit, &mut rng).mod_switch(ck.ctx.q(), two_n))
            .collect();
        let jobs: Vec<(&ServerKey, &[u64], u64)> = switched
            .iter()
            .map(|(a, b)| (sk, a.as_slice(), *b))
            .collect();
        let batched = ServerKey::blind_rotate_batch(&jobs, &tv);
        for ((a, b), got) in switched.iter().zip(&batched) {
            let want = sk.blind_rotate(a, *b, &tv);
            assert_eq!(got.mask, want.mask);
            assert_eq!(got.body, want.body);
        }
        assert!(ServerKey::blind_rotate_batch(&[], &tv).is_empty());
    }

    #[test]
    fn fft_backend_bootstraps_true() {
        let (ck, sk) = set_i_fft();
        let mut rng = StdRng::seed_from_u64(1141);
        let ct = ck.encrypt_bit(true, &mut rng);
        assert!(ck.decrypt_bit(&sk.bootstrap_sign(&ct)));
    }

    #[test]
    fn fft_backend_bootstraps_false() {
        let (ck, sk) = set_i_fft();
        let mut rng = StdRng::seed_from_u64(1142);
        let ct = ck.encrypt_bit(false, &mut rng);
        assert!(!ck.decrypt_bit(&sk.bootstrap_sign(&ct)));
    }

    fn check_set_bootstraps(fixture: &(ClientKey, ServerKey), bit: bool, seed: u64) {
        let (ck, sk) = fixture;
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = ck.encrypt_bit(bit, &mut rng);
        assert_eq!(ck.decrypt_bit(&sk.bootstrap_sign(&ct)), bit);
    }

    #[test]
    fn set_ii_bootstraps_true() {
        check_set_bootstraps(set_ii_ntt(), true, 1151);
    }

    #[test]
    fn set_ii_bootstraps_false() {
        check_set_bootstraps(set_ii_ntt(), false, 1152);
    }

    #[test]
    fn set_iii_bootstraps_true() {
        check_set_bootstraps(set_iii_ntt(), true, 1161);
    }

    #[test]
    fn set_iii_bootstraps_false() {
        check_set_bootstraps(set_iii_ntt(), false, 1162);
    }
}
