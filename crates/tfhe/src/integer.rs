//! Radix-encoded encrypted integers over TFHE.
//!
//! The paper's hybrid-scheme workloads (HE3DB, Table X) filter on
//! encrypted integers in the TFHE domain. This module provides the
//! standard radix construction: an integer is a little-endian vector of
//! digits, each digit an LWE ciphertext over a message space with spare
//! *carry space* — digits hold values in `[0, t)` inside a space of
//! `T = t^2`, so digit-wise linear arithmetic never overflows before the
//! next carry propagation, and two digits can be packed into one
//! ciphertext for bivariate lookup tables (comparisons).
//!
//! Every non-linear step (carry extraction, comparison digits, the
//! boolean combine tree) is one programmable bootstrap, which is exactly
//! the unit the paper's Table VII throughput benchmarks count.

use rand::Rng;

use crate::bootstrap::{ClientKey, ServerKey};
use crate::lwe::LweCiphertext;

/// Shape of a radix integer: `num_digits` digits of `digit_bits` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadixParams {
    /// Bits per digit (digit base `t = 2^digit_bits`).
    pub digit_bits: u32,
    /// Number of digits (little-endian).
    pub num_digits: usize,
}

impl RadixParams {
    /// Convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if `digit_bits` is 0 or `num_digits` is 0, or if the
    /// packed bivariate space `2^(2*digit_bits)` would not fit a
    /// reasonable test vector (`digit_bits > 4`).
    pub fn new(digit_bits: u32, num_digits: usize) -> Self {
        assert!((1..=4).contains(&digit_bits), "digit_bits in [1,4]");
        assert!(num_digits >= 1, "need at least one digit");
        Self {
            digit_bits,
            num_digits,
        }
    }

    /// Digit base `t`.
    pub fn base(&self) -> u64 {
        1 << self.digit_bits
    }

    /// Message space per ciphertext, `T = t^2` (digit + carry space).
    pub fn space(&self) -> u64 {
        1 << (2 * self.digit_bits)
    }

    /// Total plaintext modulus `t^num_digits`.
    pub fn modulus(&self) -> u128 {
        (self.base() as u128).pow(self.num_digits as u32)
    }

    /// Splits a value into little-endian digits (reduced mod
    /// [`Self::modulus`]).
    pub fn to_digits(&self, value: u128) -> Vec<u64> {
        let t = self.base() as u128;
        let mut v = value % self.modulus();
        (0..self.num_digits)
            .map(|_| {
                let d = (v % t) as u64;
                v /= t;
                d
            })
            .collect()
    }

    /// Reassembles a value from little-endian digits.
    pub fn from_digits(&self, digits: &[u64]) -> u128 {
        let t = self.base() as u128;
        digits
            .iter()
            .rev()
            .fold(0u128, |acc, &d| acc * t + d as u128)
    }
}

/// An encrypted integer: little-endian LWE digits in carry space.
#[derive(Debug, Clone)]
pub struct RadixCiphertext {
    /// Digit ciphertexts, least significant first.
    pub digits: Vec<LweCiphertext>,
    /// Shape.
    pub params: RadixParams,
}

impl ClientKey {
    /// Encrypts an unsigned integer as a radix ciphertext.
    pub fn encrypt_radix<R: Rng + ?Sized>(
        &self,
        value: u128,
        params: RadixParams,
        rng: &mut R,
    ) -> RadixCiphertext {
        let space = params.space();
        let digits = params
            .to_digits(value)
            .into_iter()
            .map(|d| self.encrypt_message(d, space, rng))
            .collect();
        RadixCiphertext { digits, params }
    }

    /// Decrypts a radix ciphertext back to an unsigned integer.
    pub fn decrypt_radix(&self, ct: &RadixCiphertext) -> u128 {
        let space = ct.params.space();
        let digits: Vec<u64> = ct
            .digits
            .iter()
            .map(|d| self.decrypt_message(d, space) % ct.params.base())
            .collect();
        ct.params.from_digits(&digits)
    }
}

impl ServerKey {
    /// Encoding step for message space `T`: phases are
    /// `(2m + 1) q / (4T)`.
    fn half_step(&self, space: u64) -> u64 {
        (self.ctx.q().value() as u128 / (4 * space as u128)) as u64
    }

    /// Trivial encoding of `m` in space `T` (no encryption — used for
    /// plaintext operands and offset corrections).
    fn trivial_digit(&self, m: u64, space: u64, dim: usize) -> LweCiphertext {
        LweCiphertext::trivial(dim, self.ctx.encode_message(m, space))
    }

    /// Digit-wise sum `a + b` within carry space: encodings satisfy
    /// `enc(a) + enc(b) = enc(a + b) + q/(4T)`, so one trivial offset
    /// fixes the window.
    fn digit_add(&self, a: &LweCiphertext, b: &LweCiphertext, space: u64) -> LweCiphertext {
        let q = self.ctx.q();
        let mut out = a.clone();
        out.add_assign(q, b);
        out.b = q.sub(out.b, self.half_step(space));
        out
    }

    /// Digit scaled by a small plaintext `c >= 1`:
    /// `c * enc(m) = enc(c m) + (c - 1) q/(4T)`.
    fn digit_scale(&self, a: &LweCiphertext, c: u64, space: u64) -> LweCiphertext {
        let q = self.ctx.q();
        let mut out = a.clone();
        out.mul_small(q, c);
        let fix = self.half_step(space).wrapping_mul(c - 1) % q.value();
        out.b = q.sub(out.b, q.reduce(fix));
        out
    }

    /// Bootstraps a digit through `f: [0, T) -> [0, T)`, re-encoding the
    /// output in the same space.
    fn digit_lut(&self, ct: &LweCiphertext, space: u64, f: impl Fn(u64) -> u64) -> LweCiphertext {
        let lut: Vec<u64> = (0..space)
            .map(|m| self.ctx.encode_message(f(m) % space, space))
            .collect();
        self.bootstrap_lut(ct, &lut)
    }

    /// Adds two radix integers (mod `t^d`): digit-wise adds followed by
    /// sequential carry propagation — `2` bootstraps per digit.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn radix_add(&self, a: &RadixCiphertext, b: &RadixCiphertext) -> RadixCiphertext {
        assert_eq!(a.params, b.params, "radix shape mismatch");
        let p = a.params;
        let space = p.space();
        let t = p.base();
        let mut digits = Vec::with_capacity(p.num_digits);
        let mut carry: Option<LweCiphertext> = None;
        for i in 0..p.num_digits {
            // Raw sum <= 2(t-1) + 1 < T: safe in carry space.
            let mut sum = self.digit_add(&a.digits[i], &b.digits[i], space);
            if let Some(c) = carry {
                sum = self.digit_add(&sum, &c, space);
            }
            digits.push(self.digit_lut(&sum, space, |m| m % t));
            carry = if i + 1 < p.num_digits {
                Some(self.digit_lut(&sum, space, |m| m / t))
            } else {
                None
            };
        }
        RadixCiphertext { digits, params: p }
    }

    /// Adds a plaintext constant to a radix integer (mod `t^d`).
    pub fn radix_scalar_add(&self, a: &RadixCiphertext, scalar: u128) -> RadixCiphertext {
        let p = a.params;
        let space = p.space();
        let t = p.base();
        let dim = a.digits[0].dim();
        let scalar_digits = p.to_digits(scalar);
        let mut digits = Vec::with_capacity(p.num_digits);
        let mut carry: Option<LweCiphertext> = None;
        for (i, (&sdigit, a_digit)) in scalar_digits.iter().zip(&a.digits).enumerate() {
            let sd = self.trivial_digit(sdigit, space, dim);
            let mut sum = self.digit_add(a_digit, &sd, space);
            if let Some(c) = carry {
                sum = self.digit_add(&sum, &c, space);
            }
            digits.push(self.digit_lut(&sum, space, |m| m % t));
            carry = if i + 1 < p.num_digits {
                Some(self.digit_lut(&sum, space, |m| m / t))
            } else {
                None
            };
        }
        RadixCiphertext { digits, params: p }
    }

    /// Multiplies a radix integer by a small plaintext scalar
    /// `1 <= c <= t` (mod `t^d`).
    ///
    /// # Panics
    ///
    /// Panics if `c` is 0 or exceeds the digit base.
    pub fn radix_scalar_mul(&self, a: &RadixCiphertext, c: u64) -> RadixCiphertext {
        let p = a.params;
        let t = p.base();
        assert!(c >= 1 && c <= t, "scalar must be in [1, t]");
        let space = p.space();
        let mut digits = Vec::with_capacity(p.num_digits);
        let mut carry: Option<LweCiphertext> = None;
        for i in 0..p.num_digits {
            // c * digit <= t(t-1) < T, plus a carry < t stays below T.
            let mut prod = self.digit_scale(&a.digits[i], c, space);
            if let Some(cin) = carry {
                prod = self.digit_add(&prod, &cin, space);
            }
            digits.push(self.digit_lut(&prod, space, |m| m % t));
            carry = if i + 1 < p.num_digits {
                Some(self.digit_lut(&prod, space, |m| m / t))
            } else {
                None
            };
        }
        RadixCiphertext { digits, params: p }
    }

    /// Packs digit pair `(a_i, b_i)` as `t * a_i + b_i` — the bivariate
    /// LUT input. Both inputs must be clean digits (values `< t`).
    fn pack_pair(&self, a: &LweCiphertext, b: &LweCiphertext, space: u64, t: u64) -> LweCiphertext {
        let scaled = self.digit_scale(a, t, space);
        self.digit_add(&scaled, b, space)
    }

    /// Equality test: returns a boolean LWE ciphertext (`±q/8`
    /// encoding, compatible with the gate API).
    ///
    /// Costs `d` bivariate bootstraps plus `d - 1` AND gates.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn radix_eq(&self, a: &RadixCiphertext, b: &RadixCiphertext) -> LweCiphertext {
        assert_eq!(a.params, b.params, "radix shape mismatch");
        let p = a.params;
        let (space, t) = (p.space(), p.base());
        let q = self.ctx.q();
        let yes = q.value() / 8;
        let no = q.neg(yes);
        let eq_bits: Vec<LweCiphertext> = (0..p.num_digits)
            .map(|i| {
                let packed = self.pack_pair(&a.digits[i], &b.digits[i], space, t);
                let lut: Vec<u64> = (0..space)
                    .map(|m| if m / t == m % t { yes } else { no })
                    .collect();
                self.bootstrap_lut(&packed, &lut)
            })
            .collect();
        let mut acc = eq_bits[0].clone();
        for bit in &eq_bits[1..] {
            acc = self.and(&acc, bit);
        }
        acc
    }

    /// Less-than test `a < b`: returns a boolean LWE ciphertext.
    ///
    /// Lexicographic combine from the most significant digit:
    /// `lt = lt_d OR (eq_d AND lt_rest)`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn radix_lt(&self, a: &RadixCiphertext, b: &RadixCiphertext) -> LweCiphertext {
        assert_eq!(a.params, b.params, "radix shape mismatch");
        let p = a.params;
        let (space, t) = (p.space(), p.base());
        let q = self.ctx.q();
        let yes = q.value() / 8;
        let no = q.neg(yes);
        let digit_bool = |i: usize, f: &dyn Fn(u64, u64) -> bool| {
            let packed = self.pack_pair(&a.digits[i], &b.digits[i], space, t);
            let lut: Vec<u64> = (0..space)
                .map(|m| if f(m / t, m % t) { yes } else { no })
                .collect();
            self.bootstrap_lut(&packed, &lut)
        };
        // Least significant digit contributes only its lt bit.
        let mut acc = digit_bool(0, &|x, y| x < y);
        for i in 1..p.num_digits {
            let lt_i = digit_bool(i, &|x, y| x < y);
            let eq_i = digit_bool(i, &|x, y| x == y);
            let keep = self.and(&eq_i, &acc);
            acc = self.or(&lt_i, &keep);
        }
        acc
    }

    /// Comparison against a plaintext threshold: `a < scalar`, one
    /// univariate bootstrap per digit plus the combine tree.
    pub fn radix_lt_scalar(&self, a: &RadixCiphertext, scalar: u128) -> LweCiphertext {
        let p = a.params;
        let (space, t) = (p.space(), p.base());
        let q = self.ctx.q();
        let yes = q.value() / 8;
        let no = q.neg(yes);
        let sd = p.to_digits(scalar);
        let digit_bool = |i: usize, f: &dyn Fn(u64, u64) -> bool| {
            let lut: Vec<u64> = (0..space)
                .map(|m| if f(m % t, sd[i]) { yes } else { no })
                .collect();
            self.bootstrap_lut(&a.digits[i], &lut)
        };
        let mut acc = digit_bool(0, &|x, y| x < y);
        for i in 1..p.num_digits {
            let lt_i = digit_bool(i, &|x, y| x < y);
            let eq_i = digit_bool(i, &|x, y| x == y);
            let keep = self.and(&eq_i, &acc);
            acc = self.or(&lt_i, &keep);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::TfheContext;
    use crate::ggsw::MulBackend;
    use crate::params::TfheParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys(seed: u64) -> (ClientKey, ServerKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
        let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
        (ck, sk, rng)
    }

    #[test]
    fn radix_digit_roundtrip() {
        let p = RadixParams::new(2, 4);
        assert_eq!(p.base(), 4);
        assert_eq!(p.space(), 16);
        assert_eq!(p.modulus(), 256);
        for v in [0u128, 1, 37, 200, 255, 256, 300] {
            let digits = p.to_digits(v);
            assert_eq!(p.from_digits(&digits), v % 256);
        }
    }

    #[test]
    fn encrypt_decrypt_radix() {
        let (ck, _sk, mut rng) = keys(511);
        let p = RadixParams::new(2, 3);
        for v in [0u128, 5, 42, 63] {
            let ct = ck.encrypt_radix(v, p, &mut rng);
            assert_eq!(ck.decrypt_radix(&ct), v, "value {v}");
        }
    }

    #[test]
    fn radix_add_with_carries() {
        let (ck, sk, mut rng) = keys(512);
        let p = RadixParams::new(2, 3); // mod 64
        for (a, b) in [(3u128, 1u128), (15, 1), (21, 42), (60, 10)] {
            let ca = ck.encrypt_radix(a, p, &mut rng);
            let cb = ck.encrypt_radix(b, p, &mut rng);
            let sum = sk.radix_add(&ca, &cb);
            assert_eq!(ck.decrypt_radix(&sum), (a + b) % 64, "{a} + {b}");
        }
    }

    #[test]
    fn radix_scalar_add_and_mul() {
        let (ck, sk, mut rng) = keys(513);
        let p = RadixParams::new(2, 3);
        let ct = ck.encrypt_radix(13, p, &mut rng);
        assert_eq!(ck.decrypt_radix(&sk.radix_scalar_add(&ct, 9)), 22);
        assert_eq!(ck.decrypt_radix(&sk.radix_scalar_mul(&ct, 3)), 39);
        // Carry chains across all digits: 13 * 4 = 52.
        assert_eq!(ck.decrypt_radix(&sk.radix_scalar_mul(&ct, 4)), 52);
    }

    #[test]
    fn radix_eq_detects_equality_and_difference() {
        let (ck, sk, mut rng) = keys(514);
        let p = RadixParams::new(2, 2); // mod 16
        let a = ck.encrypt_radix(11, p, &mut rng);
        let b = ck.encrypt_radix(11, p, &mut rng);
        let c = ck.encrypt_radix(7, p, &mut rng);
        assert!(ck.decrypt_bit(&sk.radix_eq(&a, &b)));
        assert!(!ck.decrypt_bit(&sk.radix_eq(&a, &c)));
        // Differs only in the most significant digit.
        let d = ck.encrypt_radix(11 + 4, p, &mut rng);
        assert!(!ck.decrypt_bit(&sk.radix_eq(&a, &d)));
    }

    #[test]
    fn radix_lt_orders_values() {
        let (ck, sk, mut rng) = keys(515);
        let p = RadixParams::new(2, 2);
        for (a, b, want) in [
            (3u128, 9u128, true),
            (9, 3, false),
            (7, 7, false),
            // Same high digit, differing low digit.
            (5, 6, true),
            (6, 5, false),
        ] {
            let ca = ck.encrypt_radix(a, p, &mut rng);
            let cb = ck.encrypt_radix(b, p, &mut rng);
            assert_eq!(ck.decrypt_bit(&sk.radix_lt(&ca, &cb)), want, "{a} < {b}");
        }
    }

    #[test]
    fn radix_lt_scalar_threshold() {
        let (ck, sk, mut rng) = keys(516);
        let p = RadixParams::new(2, 2);
        for (a, thr, want) in [(3u128, 8u128, true), (8, 8, false), (12, 8, false)] {
            let ca = ck.encrypt_radix(a, p, &mut rng);
            assert_eq!(
                ck.decrypt_bit(&sk.radix_lt_scalar(&ca, thr)),
                want,
                "{a} < {thr}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_rejected() {
        let (ck, sk, mut rng) = keys(517);
        let a = ck.encrypt_radix(1, RadixParams::new(2, 2), &mut rng);
        let b = ck.encrypt_radix(1, RadixParams::new(2, 3), &mut rng);
        let _ = sk.radix_add(&a, &b);
    }
}
