//! Reusable boolean circuits over bootstrapped gates.
//!
//! The paper's logic-FHE workloads are gate circuits chained through
//! programmable bootstraps; this module packages the standard building
//! blocks — ripple-carry addition, subtraction, comparison, and word
//! multiplexing — over vectors of bit ciphertexts (little-endian
//! words). Gate counts matter: every binary gate is one PBS, which is
//! exactly the unit Table VII measures, so each circuit documents its
//! bootstrap cost.

use crate::bootstrap::{ClientKey, ServerKey};
use crate::lwe::LweCiphertext;
use rand::Rng;

/// An encrypted word: little-endian vector of boolean LWE ciphertexts.
pub type BitWord = Vec<LweCiphertext>;

impl ClientKey {
    /// Encrypts a `bits`-wide little-endian word.
    pub fn encrypt_word<R: Rng + ?Sized>(&self, value: u64, bits: usize, rng: &mut R) -> BitWord {
        (0..bits)
            .map(|i| self.encrypt_bit((value >> i) & 1 == 1, rng))
            .collect()
    }

    /// Decrypts a word back to an integer.
    pub fn decrypt_word(&self, word: &BitWord) -> u64 {
        word.iter()
            .enumerate()
            .map(|(i, ct)| (self.decrypt_bit(ct) as u64) << i)
            .sum()
    }
}

impl ServerKey {
    /// Full adder: returns `(sum, carry)`. Five gates (5 PBS).
    pub fn full_adder(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        cin: &LweCiphertext,
    ) -> (LweCiphertext, LweCiphertext) {
        let axb = self.xor(a, b);
        let sum = self.xor(&axb, cin);
        let c1 = self.and(a, b);
        let c2 = self.and(&axb, cin);
        let carry = self.or(&c1, &c2);
        (sum, carry)
    }

    /// Ripple-carry addition of two equal-width words (mod `2^bits`).
    /// Costs `5*bits - 3` gates.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or the words are empty.
    pub fn add_words(&self, a: &BitWord, b: &BitWord) -> BitWord {
        assert_eq!(a.len(), b.len(), "width mismatch");
        assert!(!a.is_empty(), "empty word");
        let mut out = Vec::with_capacity(a.len());
        // Half adder for the least significant bit.
        out.push(self.xor(&a[0], &b[0]));
        let mut carry = self.and(&a[0], &b[0]);
        for i in 1..a.len() {
            let (s, c) = self.full_adder(&a[i], &b[i], &carry);
            out.push(s);
            if i + 1 < a.len() {
                carry = c;
            }
        }
        out
    }

    /// Two's-complement negation (mod `2^bits`): invert and add one.
    pub fn negate_word(&self, a: &BitWord) -> BitWord {
        // NOT is linear (free); the +1 ripples a carry through.
        let inverted: Vec<LweCiphertext> = a.iter().map(|ct| self.not(ct)).collect();
        let mut out = Vec::with_capacity(a.len());
        // +1 at the LSB: sum = !inv[0], carry = inv[0].
        out.push(self.not(&inverted[0]));
        let mut carry = inverted[0].clone();
        for bit in inverted.iter().skip(1) {
            out.push(self.xor(bit, &carry));
            carry = self.and(bit, &carry);
        }
        out
    }

    /// Subtraction `a - b` (mod `2^bits`): negate and add.
    pub fn sub_words(&self, a: &BitWord, b: &BitWord) -> BitWord {
        let neg = self.negate_word(b);
        self.add_words(a, &neg)
    }

    /// Unsigned comparison `a < b`: scan from the most significant bit
    /// with `lt = (!a & b) | ((a == b) & lt_lower)`. Costs about
    /// `5*bits` gates.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or the words are empty.
    pub fn lt_words(&self, a: &BitWord, b: &BitWord) -> LweCiphertext {
        assert_eq!(a.len(), b.len(), "width mismatch");
        assert!(!a.is_empty(), "empty word");
        let bit_lt = |i: usize| self.and(&self.not(&a[i]), &b[i]);
        let mut acc = bit_lt(0);
        for i in 1..a.len() {
            let lt_i = bit_lt(i);
            let eq_i = self.xnor(&a[i], &b[i]);
            let keep = self.and(&eq_i, &acc);
            acc = self.or(&lt_i, &keep);
        }
        acc
    }

    /// Equality of two words: XNOR each bit and AND-reduce
    /// (`2*bits - 1` gates).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or the words are empty.
    pub fn eq_words(&self, a: &BitWord, b: &BitWord) -> LweCiphertext {
        assert_eq!(a.len(), b.len(), "width mismatch");
        assert!(!a.is_empty(), "empty word");
        let mut acc = self.xnor(&a[0], &b[0]);
        for i in 1..a.len() {
            let e = self.xnor(&a[i], &b[i]);
            acc = self.and(&acc, &e);
        }
        acc
    }

    /// Word multiplexer: `sel ? a : b`, bit-wise (3 gates per bit).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn mux_words(&self, sel: &LweCiphertext, a: &BitWord, b: &BitWord) -> BitWord {
        assert_eq!(a.len(), b.len(), "width mismatch");
        a.iter().zip(b).map(|(x, y)| self.mux(sel, x, y)).collect()
    }

    /// Maximum of two unsigned words: one comparison + one mux.
    pub fn max_words(&self, a: &BitWord, b: &BitWord) -> BitWord {
        let a_lt_b = self.lt_words(a, b);
        self.mux_words(&a_lt_b, b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::TfheContext;
    use crate::ggsw::MulBackend;
    use crate::params::TfheParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys(seed: u64) -> (ClientKey, ServerKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
        let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
        (ck, sk, rng)
    }

    #[test]
    fn word_roundtrip() {
        let (ck, _sk, mut rng) = keys(801);
        for v in [0u64, 1, 5, 12, 15] {
            let w = ck.encrypt_word(v, 4, &mut rng);
            assert_eq!(ck.decrypt_word(&w), v);
        }
    }

    #[test]
    fn ripple_adder() {
        let (ck, sk, mut rng) = keys(802);
        for (a, b) in [(3u64, 5u64), (7, 9), (15, 1), (12, 12)] {
            let wa = ck.encrypt_word(a, 4, &mut rng);
            let wb = ck.encrypt_word(b, 4, &mut rng);
            let sum = sk.add_words(&wa, &wb);
            assert_eq!(ck.decrypt_word(&sum), (a + b) % 16, "{a} + {b}");
        }
    }

    #[test]
    fn twos_complement_subtraction() {
        let (ck, sk, mut rng) = keys(803);
        for (a, b) in [(9u64, 5u64), (5, 9), (15, 15), (0, 1)] {
            let wa = ck.encrypt_word(a, 4, &mut rng);
            let wb = ck.encrypt_word(b, 4, &mut rng);
            let diff = sk.sub_words(&wa, &wb);
            assert_eq!(ck.decrypt_word(&diff), a.wrapping_sub(b) % 16, "{a} - {b}");
        }
    }

    #[test]
    fn comparisons() {
        let (ck, sk, mut rng) = keys(804);
        for (a, b) in [(3u64, 7u64), (7, 3), (5, 5), (8, 9)] {
            let wa = ck.encrypt_word(a, 4, &mut rng);
            let wb = ck.encrypt_word(b, 4, &mut rng);
            assert_eq!(ck.decrypt_bit(&sk.lt_words(&wa, &wb)), a < b, "{a} < {b}");
            assert_eq!(ck.decrypt_bit(&sk.eq_words(&wa, &wb)), a == b, "{a} == {b}");
        }
    }

    #[test]
    fn max_selects_larger() {
        let (ck, sk, mut rng) = keys(805);
        for (a, b) in [(3u64, 11u64), (14, 2)] {
            let wa = ck.encrypt_word(a, 4, &mut rng);
            let wb = ck.encrypt_word(b, 4, &mut rng);
            let m = sk.max_words(&wa, &wb);
            assert_eq!(ck.decrypt_word(&m), a.max(b), "max({a},{b})");
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_rejected() {
        let (ck, sk, mut rng) = keys(806);
        let wa = ck.encrypt_word(1, 3, &mut rng);
        let wb = ck.encrypt_word(1, 4, &mut rng);
        let _ = sk.add_words(&wa, &wb);
    }
}
