//! # fhe-tfhe — TFHE built from scratch, with NTT and FFT backends
//!
//! The logic-FHE substrate of the Trinity reproduction (paper §II-B):
//! LWE/GLWE/GGSW ciphertexts, the external product, CMUX, blind
//! rotation, programmable bootstrapping (Algorithm 2), LWE keyswitching
//! and the full boolean gate set.
//!
//! The distinguishing reproduction detail: polynomial multiplication
//! inside the external product is pluggable — [`MulBackend::Ntt`] runs
//! over the NTT-friendly prime closest to `2^32` (exact, Trinity's
//! design), [`MulBackend::Fft`] uses double-precision FFT with rounding
//! (the conventional accelerator approach the paper replaces).
//!
//! # Lazy-domain invariants
//!
//! The NTT-backend external product — and through it the
//! blind-rotation accumulator of every bootstrap — is a cross-kernel
//! lazy residue chain: digit NTTs exit in the `[0, 2p)` window, all
//! `(k+1) * lb` multiply-accumulates stay lazy, and the per-component
//! iNTT exit performs the single deferred canonicalisation (once per
//! output limb, the way NTT hardware pipelines fold at memory
//! writeback). [`Ggsw::external_product_strict`] is the fully-reduced
//! oracle; the workspace suite `tests/lazy_chains.rs` asserts
//! bit-identity across the paper's Sets I–III.
//!
//! The row passes underneath dispatch through the runtime-selected
//! [`fhe_math::kernel::KernelBackend`] (scalar reference or chunked
//! lane implementation); backends are bit-identical by contract, so
//! the selection never changes a ciphertext. See `README.md`.
//!
//! # Examples
//!
//! ```no_run
//! use fhe_tfhe::{ClientKey, MulBackend, ServerKey, TfheContext, TfheParams};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
//! let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
//! let a = ck.encrypt_bit(true, &mut rng);
//! let b = ck.encrypt_bit(false, &mut rng);
//! let out = sk.nand(&a, &b);
//! assert!(ck.decrypt_bit(&out));
//! ```

#![warn(missing_docs)]

pub mod bootstrap;
pub mod circuits;
pub mod gates;
pub mod ggsw;
pub mod glwe;
pub mod integer;
pub mod lwe;
pub mod nn;
pub mod params;
pub mod ring;

pub use bootstrap::{ClientKey, ServerKey, TfheContext};
pub use circuits::BitWord;
pub use gates::{apply_gates_batched, BatchedGateJob, GateOp};
pub use ggsw::{Ggsw, MulBackend};
pub use glwe::{GlweCiphertext, GlweSecretKey};
pub use integer::{RadixCiphertext, RadixParams};
pub use lwe::{LweCiphertext, LweKeySwitchKey, LweSecretKey};
pub use nn::{DiscreteMlp, SignLayer};
pub use params::TfheParams;
pub use ring::TfheRing;
