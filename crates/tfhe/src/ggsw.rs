//! GGSW ciphertexts and the external product, with interchangeable NTT
//! and FFT polynomial-multiplication backends.
//!
//! The external product (paper §II-B) multiplies a GLWE ciphertext by a
//! GGSW ciphertext: the GLWE components are gadget-decomposed into
//! `(k+1) * lb` small polynomials, which are multiplied against the GGSW
//! rows and accumulated — `NTT(tmp[j]) * bsk[i][j]` in Algorithm 2
//! line 9. Trinity runs this on exact NTT hardware; FFT-based
//! accelerators (Morphling, Strix, Matcha) use the approximate
//! double-precision path kept here as [`MulBackend::Fft`] for the
//! ablation.

use fhe_math::kernel::{self, ExitFold};
use fhe_math::NttTable;
use rand::Rng;

use crate::glwe::{GlweCiphertext, GlweSecretKey};
use crate::lwe::gadget_element;
use crate::ring::TfheRing;

/// Which polynomial multiplier the external product uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulBackend {
    /// Exact NTT over the prime modulus (Trinity's approach).
    Ntt,
    /// Double-precision FFT with rounding (the conventional approach).
    Fft,
}

/// A GGSW ciphertext prepared for fast external products.
///
/// Row `(i, j)` (for component `i in 0..=k`, level `j in 1..=lb`)
/// encrypts `m * g_j` added at component `i`. For the NTT backend all
/// rows are stored in evaluation form; for the FFT backend rows are
/// stored as centered signed integers.
#[derive(Debug, Clone)]
pub struct Ggsw {
    k: usize,
    lb: usize,
    bg_log: u32,
    repr: GgswRepr,
}

#[derive(Debug, Clone)]
enum GgswRepr {
    /// `rows[r][component][coeff]` in NTT evaluation form.
    Ntt(Vec<Vec<Vec<u64>>>),
    /// `rows[r][component][coeff]` centered in `[-q/2, q/2)`.
    Fft(Vec<Vec<Vec<i64>>>),
}

impl Ggsw {
    /// Encrypts a small scalar `m` (0 or 1 for bootstrap keys) as a GGSW
    /// ciphertext, prepared for the chosen backend.
    ///
    /// The argument list mirrors the gadget parameters one-to-one; a
    /// params struct would only restate `TfheParams`.
    #[allow(clippy::too_many_arguments)]
    pub fn encrypt_scalar<R: Rng + ?Sized>(
        ring: &TfheRing,
        sk: &GlweSecretKey,
        m: u64,
        lb: usize,
        bg_log: u32,
        noise_std: f64,
        backend: MulBackend,
        rng: &mut R,
    ) -> Self {
        let k = sk.k();
        let q = ring.modulus();
        let mut rows = Vec::with_capacity((k + 1) * lb);
        for i in 0..=k {
            for j in 1..=lb {
                let zero = ring.zero_poly();
                let mut ct = GlweCiphertext::encrypt(ring, sk, &zero, noise_std, rng);
                if m != 0 {
                    let g = gadget_element(q.value(), bg_log, j);
                    let add = q.mul(q.reduce(m), g);
                    if i < k {
                        ct.mask[i][0] = q.add(ct.mask[i][0], add);
                    } else {
                        ct.body[0] = q.add(ct.body[0], add);
                    }
                }
                rows.push(ct);
            }
        }
        Self::prepare(ring, rows, k, lb, bg_log, backend)
    }

    fn prepare(
        ring: &TfheRing,
        rows: Vec<GlweCiphertext>,
        k: usize,
        lb: usize,
        bg_log: u32,
        backend: MulBackend,
    ) -> Self {
        let repr = match backend {
            MulBackend::Ntt => GgswRepr::Ntt(
                rows.into_iter()
                    .map(|ct| {
                        let mut comps = ct.mask;
                        comps.push(ct.body);
                        comps
                            .into_iter()
                            .map(|mut poly| {
                                ring.table().forward(&mut poly);
                                poly
                            })
                            .collect()
                    })
                    .collect(),
            ),
            MulBackend::Fft => GgswRepr::Fft(
                rows.into_iter()
                    .map(|ct| {
                        let mut comps = ct.mask;
                        comps.push(ct.body);
                        comps
                            .into_iter()
                            .map(|poly| ring.to_centered(&poly))
                            .collect()
                    })
                    .collect(),
            ),
        };
        Self {
            k,
            lb,
            bg_log,
            repr,
        }
    }

    /// The backend this GGSW was prepared for.
    pub fn backend(&self) -> MulBackend {
        match self.repr {
            GgswRepr::Ntt(_) => MulBackend::Ntt,
            GgswRepr::Fft(_) => MulBackend::Fft,
        }
    }

    /// Measured heap bytes of this ciphertext's row storage (allocated
    /// `Vec` capacities at every nesting level) — one summand of
    /// [`crate::ServerKey::key_bytes`], the number a byte-budgeted key
    /// cache evicts by.
    pub fn heap_bytes(&self) -> usize {
        fn nested<T>(rows: &[Vec<Vec<T>>], cap: usize) -> usize {
            cap * std::mem::size_of::<Vec<Vec<T>>>()
                + rows
                    .iter()
                    .map(|row| {
                        row.capacity() * std::mem::size_of::<Vec<T>>()
                            + row
                                .iter()
                                .map(|c| c.capacity() * std::mem::size_of::<T>())
                                .sum::<usize>()
                    })
                    .sum::<usize>()
        }
        match &self.repr {
            GgswRepr::Ntt(rows) => nested(rows, rows.capacity()),
            GgswRepr::Fft(rows) => nested(rows, rows.capacity()),
        }
    }

    /// External product `self ⊡ glwe`.
    ///
    /// Decomposes every GLWE component into `lb` digit polynomials and
    /// accumulates digit-by-row products (Algorithm 2 lines 6–10).
    ///
    /// The NTT backend runs as a lazy residue chain: digit NTTs exit in
    /// the `[0, 2p)` window, all `(k+1) * lb` multiply-accumulates stay
    /// lazy, and the per-component iNTT's exit pass performs the single
    /// deferred canonicalisation — once per output limb instead of once
    /// per kernel, exactly the blind-rotation accumulator discipline of
    /// NTT hardware pipelines. Bit-identical to
    /// [`Self::external_product_strict`] (asserted by
    /// `tests/lazy_chains.rs`).
    pub fn external_product(&self, ring: &TfheRing, glwe: &GlweCiphertext) -> GlweCiphertext {
        let n = ring.n();
        let k = self.k;
        let digits = self.decompose_digits(ring, glwe);
        match &self.repr {
            GgswRepr::Ntt(rows) => {
                // Forward-transform each digit poly once (lazy exit),
                // accumulate in the evaluation domain in [0, 2p), and
                // let the per-component iNTT exit canonicalise.
                let mut acc = vec![vec![0u64; n]; k + 1];
                for (r, digit) in digits.iter().enumerate() {
                    let mut d = ring.poly_from_signed(digit);
                    ring.table().forward_lazy(&mut d);
                    for comp in 0..=k {
                        ring.table()
                            .pointwise_mul_acc_lazy(&mut acc[comp], &d, &rows[r][comp]);
                    }
                }
                let mut comps: Vec<Vec<u64>> = acc
                    .into_iter()
                    .map(|mut poly| {
                        // `inverse` accepts the lazy accumulator and its
                        // n^{-1} exit pass folds to canonical for free —
                        // the chain's ciphertext-boundary reduction.
                        ring.table().inverse(&mut poly);
                        poly
                    })
                    .collect();
                let body = comps.pop().expect("k+1 components");
                GlweCiphertext { mask: comps, body }
            }
            GgswRepr::Fft(rows) => {
                // Accumulate per-row FFT products in wide integers, then
                // reduce — rounding error mirrors real FFT accelerators.
                let q = ring.modulus();
                let mut acc = vec![vec![0i128; n]; k + 1];
                for (r, digit) in digits.iter().enumerate() {
                    for comp in 0..=k {
                        let prod = fhe_math::fft::negacyclic_mul_fft(digit, &rows[r][comp]);
                        for (a, &p) in acc[comp].iter_mut().zip(&prod) {
                            *a += p as i128;
                        }
                    }
                }
                let reduce = |v: &Vec<i128>| -> Vec<u64> {
                    v.iter()
                        .map(|&x| {
                            let r = x.rem_euclid(q.value() as i128);
                            r as u64
                        })
                        .collect()
                };
                let mut comps: Vec<Vec<u64>> = acc.iter().map(reduce).collect();
                let body = comps.pop().expect("k+1 components");
                GlweCiphertext { mask: comps, body }
            }
        }
    }

    /// Strict-oracle external product for the NTT backend: fully-reduced
    /// transforms (`forward_strict`/`inverse_strict`) and canonical
    /// multiply-accumulates, every kernel canonicalising its output.
    /// The reference [`Self::external_product`] is asserted against.
    ///
    /// # Panics
    ///
    /// Panics if this GGSW was prepared for the FFT backend (the strict
    /// oracle only distinguishes reduction discipline, which is an
    /// NTT-path concept).
    pub fn external_product_strict(
        &self,
        ring: &TfheRing,
        glwe: &GlweCiphertext,
    ) -> GlweCiphertext {
        let n = ring.n();
        let k = self.k;
        let digits = self.decompose_digits(ring, glwe);
        let GgswRepr::Ntt(rows) = &self.repr else {
            panic!("external_product_strict requires the NTT backend");
        };
        let mut acc = vec![vec![0u64; n]; k + 1];
        for (r, digit) in digits.iter().enumerate() {
            let mut d = ring.poly_from_signed(digit);
            ring.table().forward_strict(&mut d);
            for comp in 0..=k {
                ring.table()
                    .pointwise_mul_acc(&mut acc[comp], &d, &rows[r][comp]);
            }
        }
        let mut comps: Vec<Vec<u64>> = acc
            .into_iter()
            .map(|mut poly| {
                ring.table().inverse_strict(&mut poly);
                poly
            })
            .collect();
        let body = comps.pop().expect("k+1 components");
        GlweCiphertext { mask: comps, body }
    }

    /// Gadget-decomposes every GLWE component into `lb` digit
    /// polynomials, row-aligned with the GGSW rows (index
    /// `i*lb + (j-1)`) — Algorithm 2 lines 6–8, shared by both reduction
    /// disciplines.
    fn decompose_digits(&self, ring: &TfheRing, glwe: &GlweCiphertext) -> Vec<Vec<i64>> {
        let n = ring.n();
        let q = ring.modulus();
        let k = self.k;
        // Flatten the k+1 components into contiguous rows and dispatch
        // through the active kernel backend, which may slice component
        // rows across worker threads (the digit carry chain forbids
        // slicing across levels). The batch layout puts digit j of
        // component i at row `i*lb + j` — exactly the GGSW row
        // alignment this function must return.
        let mut src = Vec::with_capacity((k + 1) * n);
        for mask in &glwe.mask {
            src.extend_from_slice(mask);
        }
        src.extend_from_slice(&glwe.body);
        let mut flat = vec![0i64; (k + 1) * self.lb * n];
        fhe_math::kernel::active().decompose_batch(
            q.value(),
            self.bg_log,
            self.lb,
            n,
            &src,
            &mut flat,
        );
        flat.chunks_exact(n).map(|row| row.to_vec()).collect()
    }

    /// Batched external product: `jobs[i].0 ⊡ jobs[i].1` for every job
    /// in one pass of wide kernel batch calls.
    ///
    /// Where [`Self::external_product`] feeds the kernel one digit row
    /// at a time, this entry concatenates every job's rows so each
    /// batch call sees `jobs * (k+1)` rows at once — the MATCHA-style
    /// "k independent bootstraps through one kernel dispatch" shape the
    /// worker pool can slice across threads. Per job the arithmetic is
    /// the *same* lazy residue chain in the same order (one gadget
    /// decomposition, digit NTTs exiting in `[0, 2p)`, lazy
    /// multiply-accumulates per gadget row in increasing row order, one
    /// canonicalising iNTT per output limb), so each output is
    /// bit-identical to the sequential call — the batched-gate tests
    /// and the service determinism suite pin this.
    ///
    /// All jobs must share the gadget geometry (`k`, `lb`, `bg_log`)
    /// and live on `ring`.
    ///
    /// # Panics
    ///
    /// Panics if any GGSW was prepared for the FFT backend (rounding
    /// there is per-product; batching would not be value-preserving) or
    /// if the jobs disagree on gadget geometry.
    pub fn external_product_batch(
        ring: &TfheRing,
        jobs: &[(&Ggsw, &GlweCiphertext)],
    ) -> Vec<GlweCiphertext> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let n = ring.n();
        let q = ring.modulus();
        let (head, _) = jobs[0];
        let (k, lb, bg_log) = (head.k, head.lb, head.bg_log);
        assert!(
            jobs.iter().all(|(g, _)| g.k == k
                && g.lb == lb
                && g.bg_log == bg_log
                && g.backend() == MulBackend::Ntt),
            "external_product_batch requires NTT-backend jobs with one gadget geometry"
        );
        let rows_per = (k + 1) * lb;

        // One gadget decomposition over every job's components; row
        // `job*rows_per + i*lb + j` holds digit j of job's component i,
        // matching the per-job GGSW row alignment.
        let mut src = Vec::with_capacity(jobs.len() * (k + 1) * n);
        for (_, glwe) in jobs {
            for mask in &glwe.mask {
                src.extend_from_slice(mask);
            }
            src.extend_from_slice(&glwe.body);
        }
        let mut digits = vec![0i64; jobs.len() * rows_per * n];
        kernel::active().decompose_batch(q.value(), bg_log, lb, n, &src, &mut digits);

        // One forward pass over every digit row, exiting lazy in
        // [0, 2p) exactly like the sequential `forward_lazy`.
        let mut fwd = Vec::with_capacity(digits.len());
        for row in digits.chunks_exact(n) {
            fwd.extend(ring.poly_from_signed(row));
        }
        let tables: Vec<&NttTable> = vec![ring.table().as_ref(); jobs.len() * rows_per];
        kernel::active().forward_batch(&tables, &mut fwd, ExitFold::Lazy2p);

        // Accumulator row `job*(k+1) + comp`; gadget rows accumulate in
        // the same increasing order as the sequential loop, so the lazy
        // sums agree word-for-word.
        let acc_rows = jobs.len() * (k + 1);
        let moduli = vec![*q; acc_rows];
        let mut acc = vec![0u64; acc_rows * n];
        let mut a_flat = vec![0u64; acc_rows * n];
        let mut b_flat = vec![0u64; acc_rows * n];
        for r in 0..rows_per {
            for (j, (ggsw, _)) in jobs.iter().enumerate() {
                let GgswRepr::Ntt(rows) = &ggsw.repr else {
                    unreachable!("asserted above");
                };
                let digit = &fwd[(j * rows_per + r) * n..][..n];
                for (comp, row) in rows[r].iter().enumerate() {
                    let at = (j * (k + 1) + comp) * n;
                    a_flat[at..at + n].copy_from_slice(digit);
                    b_flat[at..at + n].copy_from_slice(row);
                }
            }
            kernel::active().mul_acc_lazy_batch(&moduli, &mut acc, &a_flat, &b_flat);
        }

        // One canonicalising inverse pass over every output limb — the
        // chain's single ciphertext-boundary reduction, batched.
        let acc_tables: Vec<&NttTable> = vec![ring.table().as_ref(); acc_rows];
        kernel::active().inverse_batch(&acc_tables, &mut acc, ExitFold::Canonical);

        let mut out = Vec::with_capacity(jobs.len());
        let mut limbs = acc.chunks_exact(n);
        for _ in jobs {
            let mut comps: Vec<Vec<u64>> = (0..=k)
                .map(|_| limbs.next().expect("acc_rows limbs").to_vec())
                .collect();
            let body = comps.pop().expect("k+1 components");
            out.push(GlweCiphertext { mask: comps, body });
        }
        out
    }

    /// CMUX: returns `ct0 + self ⊡ (ct1 - ct0)` — selects `ct1` when the
    /// encrypted bit is 1, `ct0` when it is 0.
    pub fn cmux(
        &self,
        ring: &TfheRing,
        ct0: &GlweCiphertext,
        ct1: &GlweCiphertext,
    ) -> GlweCiphertext {
        let mut diff = ct1.clone();
        diff.sub_assign(ring, ct0);
        let mut out = self.external_product(ring, &diff);
        out.add_assign(ring, ct0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TfheRing, GlweSecretKey, StdRng) {
        let ring = TfheRing::new(1024, 32);
        let mut rng = StdRng::seed_from_u64(101);
        let sk = GlweSecretKey::generate(1, 1024, &mut rng);
        (ring, sk, rng)
    }

    fn phase_error(ring: &TfheRing, got: &[u64], want: &[u64]) -> i64 {
        let m = ring.modulus();
        got.iter()
            .zip(want)
            .map(|(&g, &w)| m.to_centered(m.sub(g, w)).abs())
            .max()
            .unwrap()
    }

    #[test]
    fn external_product_by_one_is_identity_ish() {
        for backend in [MulBackend::Ntt, MulBackend::Fft] {
            let (ring, sk, mut rng) = setup();
            let q = ring.q();
            let ggsw_one = Ggsw::encrypt_scalar(&ring, &sk, 1, 2, 10, 3.73e-9, backend, &mut rng);
            let mut msg = ring.zero_poly();
            msg[0] = q / 8;
            msg[7] = q - q / 8;
            let glwe = GlweCiphertext::encrypt(&ring, &sk, &msg, 3.73e-9, &mut rng);
            let out = ggsw_one.external_product(&ring, &glwe);
            let phase = out.phase(&ring, &sk);
            let err = phase_error(&ring, &phase, &msg);
            assert!(err < (q / 64) as i64, "{backend:?}: err {err}");
        }
    }

    #[test]
    fn external_product_by_zero_kills_message() {
        for backend in [MulBackend::Ntt, MulBackend::Fft] {
            let (ring, sk, mut rng) = setup();
            let q = ring.q();
            let ggsw_zero = Ggsw::encrypt_scalar(&ring, &sk, 0, 2, 10, 3.73e-9, backend, &mut rng);
            let mut msg = ring.zero_poly();
            msg[0] = q / 4;
            let glwe = GlweCiphertext::encrypt(&ring, &sk, &msg, 3.73e-9, &mut rng);
            let out = ggsw_zero.external_product(&ring, &glwe);
            let phase = out.phase(&ring, &sk);
            let err = phase_error(&ring, &phase, &ring.zero_poly());
            assert!(err < (q / 64) as i64, "{backend:?}: err {err}");
        }
    }

    #[test]
    fn cmux_selects() {
        for backend in [MulBackend::Ntt, MulBackend::Fft] {
            let (ring, sk, mut rng) = setup();
            let q = ring.q();
            let mut m0 = ring.zero_poly();
            m0[0] = q / 8;
            let mut m1 = ring.zero_poly();
            m1[0] = q - q / 8;
            let ct0 = GlweCiphertext::encrypt(&ring, &sk, &m0, 3.73e-9, &mut rng);
            let ct1 = GlweCiphertext::encrypt(&ring, &sk, &m1, 3.73e-9, &mut rng);
            for bit in [0u64, 1] {
                let sel = Ggsw::encrypt_scalar(&ring, &sk, bit, 2, 10, 3.73e-9, backend, &mut rng);
                let out = sel.cmux(&ring, &ct0, &ct1);
                let phase = out.phase(&ring, &sk);
                let want = if bit == 0 { &m0 } else { &m1 };
                let err = phase_error(&ring, &phase, want);
                assert!(err < (q / 64) as i64, "{backend:?} bit {bit}: err {err}");
            }
        }
    }

    #[test]
    fn batched_external_product_is_bit_identical_to_sequential() {
        let (ring, sk, mut rng) = setup();
        let q = ring.q();
        // Distinct GGSWs and GLWEs per job so the batch cannot get away
        // with evaluating only one and fanning it out.
        let jobs: Vec<(Ggsw, GlweCiphertext)> = (0..4)
            .map(|i| {
                let ggsw = Ggsw::encrypt_scalar(
                    &ring,
                    &sk,
                    (i % 2) as u64,
                    2,
                    10,
                    3.73e-9,
                    MulBackend::Ntt,
                    &mut rng,
                );
                let mut msg = ring.zero_poly();
                msg[i] = q / 8;
                let glwe = GlweCiphertext::encrypt(&ring, &sk, &msg, 3.73e-9, &mut rng);
                (ggsw, glwe)
            })
            .collect();
        let refs: Vec<(&Ggsw, &GlweCiphertext)> = jobs.iter().map(|(g, c)| (g, c)).collect();
        let batched = Ggsw::external_product_batch(&ring, &refs);
        for ((ggsw, glwe), got) in jobs.iter().zip(&batched) {
            let want = ggsw.external_product(&ring, glwe);
            assert_eq!(got.mask, want.mask);
            assert_eq!(got.body, want.body);
        }
        assert!(Ggsw::external_product_batch(&ring, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "NTT-backend jobs")]
    fn batched_external_product_rejects_fft_jobs() {
        let (ring, sk, mut rng) = setup();
        let ggsw = Ggsw::encrypt_scalar(&ring, &sk, 1, 2, 10, 3.73e-9, MulBackend::Fft, &mut rng);
        let glwe = GlweCiphertext::encrypt(&ring, &sk, &ring.zero_poly(), 3.73e-9, &mut rng);
        Ggsw::external_product_batch(&ring, &[(&ggsw, &glwe)]);
    }

    #[test]
    fn ntt_backend_is_more_accurate_than_fft() {
        // Chain external products by 1 and compare error growth: the NTT
        // path only accrues decomposition/key noise, the FFT path adds
        // rounding on top — the paper's motivation for the substitution.
        let mut max_err = std::collections::HashMap::new();
        for backend in [MulBackend::Ntt, MulBackend::Fft] {
            let (ring, sk, mut rng) = setup();
            let q = ring.q();
            let ggsw_one = Ggsw::encrypt_scalar(&ring, &sk, 1, 2, 10, 1e-9, backend, &mut rng);
            let mut msg = ring.zero_poly();
            msg[0] = q / 8;
            let glwe = GlweCiphertext::encrypt(&ring, &sk, &msg, 1e-9, &mut rng);
            let mut cur = glwe;
            for _ in 0..4 {
                cur = ggsw_one.external_product(&ring, &cur);
            }
            let phase = cur.phase(&ring, &sk);
            let err = phase_error(&ring, &phase, &msg);
            max_err.insert(backend, err);
        }
        assert!(
            max_err[&MulBackend::Ntt] <= max_err[&MulBackend::Fft],
            "NTT {} should not exceed FFT {}",
            max_err[&MulBackend::Ntt],
            max_err[&MulBackend::Fft]
        );
    }
}
