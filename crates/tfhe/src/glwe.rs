//! GLWE ciphertexts and sample extraction.
//!
//! A GLWE ciphertext is `(A_1(X), .., A_k(X), B(X))` with
//! `B = sum A_i S_i + M + E` over the negacyclic ring (paper §II-B).
//! `SampleExtract` (Algorithm 2 line 14, and the whole of the CKKS→TFHE
//! conversion, Algorithm 3) reads one message coefficient out as an LWE
//! ciphertext under the flattened key.

use rand::Rng;

use crate::lwe::{LweCiphertext, LweSecretKey};
use crate::ring::TfheRing;

/// A GLWE secret key: `k` binary polynomials.
#[derive(Debug, Clone)]
pub struct GlweSecretKey {
    /// Secret polynomials (signed coefficients, binary).
    pub polys: Vec<Vec<i64>>,
}

impl GlweSecretKey {
    /// Samples a binary GLWE secret of dimension `k` over degree `n`.
    pub fn generate<R: Rng + ?Sized>(k: usize, n: usize, rng: &mut R) -> Self {
        Self {
            polys: (0..k).map(|_| fhe_math::sampler::binary(rng, n)).collect(),
        }
    }

    /// Builds from explicit coefficients (shared-secret scenarios in the
    /// scheme-conversion layer).
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is outside {0, 1} (binary GLWE keys).
    pub fn from_polys(polys: Vec<Vec<i64>>) -> Self {
        assert!(polys.iter().all(|p| p.iter().all(|&c| c == 0 || c == 1)));
        Self { polys }
    }

    /// GLWE dimension `k`.
    pub fn k(&self) -> usize {
        self.polys.len()
    }

    /// Flattens into the extracted LWE key of dimension `k * N`
    /// (the key `SampleExtract` outputs live under).
    pub fn extracted_lwe_key(&self) -> LweSecretKey {
        LweSecretKey {
            s: self.polys.concat(),
        }
    }
}

/// A GLWE ciphertext: `k` mask polynomials plus a body.
#[derive(Debug, Clone)]
pub struct GlweCiphertext {
    /// Mask polynomials `A_i`.
    pub mask: Vec<Vec<u64>>,
    /// Body polynomial `B`.
    pub body: Vec<u64>,
}

impl GlweCiphertext {
    /// The trivial encryption of a plaintext polynomial.
    pub fn trivial(ring: &TfheRing, k: usize, message: Vec<u64>) -> Self {
        assert_eq!(message.len(), ring.n());
        Self {
            mask: vec![ring.zero_poly(); k],
            body: message,
        }
    }

    /// The all-zero ciphertext.
    pub fn zero(ring: &TfheRing, k: usize) -> Self {
        Self {
            mask: vec![ring.zero_poly(); k],
            body: ring.zero_poly(),
        }
    }

    /// Encrypts a plaintext polynomial (torus-encoded coefficients).
    pub fn encrypt<R: Rng + ?Sized>(
        ring: &TfheRing,
        sk: &GlweSecretKey,
        message: &[u64],
        noise_std: f64,
        rng: &mut R,
    ) -> Self {
        let n = ring.n();
        assert_eq!(message.len(), n);
        let q = ring.modulus();
        let mask: Vec<Vec<u64>> = (0..sk.k())
            .map(|_| fhe_math::sampler::uniform_residues(rng, q, n))
            .collect();
        let sigma_abs = (noise_std * q.value() as f64).max(1e-9);
        let noise = fhe_math::sampler::gaussian(rng, n, sigma_abs);
        let mut body = ring.poly_from_signed(&noise);
        ring.add_assign(&mut body, message);
        // body += sum mask_i * s_i (negacyclic product via NTT).
        for (a, s) in mask.iter().zip(&sk.polys) {
            let s_lifted = ring.poly_from_signed(s);
            let prod = ring.table().negacyclic_mul(a, &s_lifted);
            ring.add_assign(&mut body, &prod);
        }
        Self { mask, body }
    }

    /// Decrypts to the raw phase polynomial `B - sum A_i S_i`.
    pub fn phase(&self, ring: &TfheRing, sk: &GlweSecretKey) -> Vec<u64> {
        let mut acc = self.body.clone();
        for (a, s) in self.mask.iter().zip(&sk.polys) {
            let s_lifted = ring.poly_from_signed(s);
            let prod = ring.table().negacyclic_mul(a, &s_lifted);
            ring.sub_assign(&mut acc, &prod);
        }
        acc
    }

    /// `self += other`.
    pub fn add_assign(&mut self, ring: &TfheRing, other: &GlweCiphertext) {
        for (a, b) in self.mask.iter_mut().zip(&other.mask) {
            ring.add_assign(a, b);
        }
        ring.add_assign(&mut self.body, &other.body);
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, ring: &TfheRing, other: &GlweCiphertext) {
        for (a, b) in self.mask.iter_mut().zip(&other.mask) {
            ring.sub_assign(a, b);
        }
        ring.sub_assign(&mut self.body, &other.body);
    }

    /// Returns `self * X^r` (the Rotate of Algorithm 2, exact).
    pub fn rotate(&self, ring: &TfheRing, r: i64) -> GlweCiphertext {
        GlweCiphertext {
            mask: self.mask.iter().map(|a| ring.mul_monomial(a, r)).collect(),
            body: ring.mul_monomial(&self.body, r),
        }
    }

    /// SampleExtract: extracts coefficient `idx` of the message as an
    /// LWE ciphertext under [`GlweSecretKey::extracted_lwe_key`].
    pub fn sample_extract(&self, ring: &TfheRing, idx: usize) -> LweCiphertext {
        let n = ring.n();
        assert!(idx < n);
        let q = ring.modulus();
        let mut a = Vec::with_capacity(self.mask.len() * n);
        for mask_poly in &self.mask {
            // Coefficient of s_j[i] in (A_j * S_j)[idx]:
            //   A_j[idx - i] for i <= idx, and -A_j[N + idx - i] for i > idx.
            for i in 0..n {
                if i <= idx {
                    a.push(mask_poly[idx - i]);
                } else {
                    a.push(q.neg(mask_poly[n + idx - i]));
                }
            }
        }
        LweCiphertext {
            a,
            b: self.body[idx],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_math::Modulus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TfheRing, GlweSecretKey, StdRng) {
        let ring = TfheRing::new(1024, 32);
        let mut rng = StdRng::seed_from_u64(91);
        let sk = GlweSecretKey::generate(1, 1024, &mut rng);
        (ring, sk, rng)
    }

    #[test]
    fn encrypt_decrypt_polynomial() {
        let (ring, sk, mut rng) = setup();
        let q = ring.q();
        let msg: Vec<u64> = (0..1024).map(|i| ((i % 8) as u64) * (q / 8)).collect();
        let ct = GlweCiphertext::encrypt(&ring, &sk, &msg, 3.73e-9, &mut rng);
        let phase = ct.phase(&ring, &sk);
        let m = ring.modulus();
        for (p, &expect) in phase.iter().zip(&msg) {
            let err = m.to_centered(m.sub(*p, expect)).abs();
            assert!(err < (q / 64) as i64, "err {err}");
        }
    }

    #[test]
    fn rotation_shifts_message() {
        let (ring, sk, mut rng) = setup();
        let q = ring.q();
        let mut msg = ring.zero_poly();
        msg[0] = q / 8;
        let ct = GlweCiphertext::encrypt(&ring, &sk, &msg, 1e-9, &mut rng);
        let rot = ct.rotate(&ring, 5);
        let phase = rot.phase(&ring, &sk);
        let m = ring.modulus();
        let err = m.to_centered(m.sub(phase[5], q / 8)).abs();
        assert!(err < (q / 64) as i64);
        // Rotating by N negates.
        let neg = ct.rotate(&ring, 1024);
        let phase = neg.phase(&ring, &sk);
        let err = m.to_centered(m.sub(phase[0], m.neg(q / 8))).abs();
        assert!(err < (q / 64) as i64);
    }

    #[test]
    fn sample_extract_reads_each_coefficient() {
        let (ring, sk, mut rng) = setup();
        let q = ring.q();
        let m: &Modulus = ring.modulus();
        let msg: Vec<u64> = (0..1024).map(|i| ((i % 4) as u64) * (q / 4)).collect();
        let ct = GlweCiphertext::encrypt(&ring, &sk, &msg, 3.73e-9, &mut rng);
        let lwe_key = sk.extracted_lwe_key();
        for idx in [0usize, 1, 511, 1023] {
            let lwe = ct.sample_extract(&ring, idx);
            assert_eq!(lwe.dim(), 1024);
            let phase = lwe.phase(m, &lwe_key);
            let err = m.to_centered(m.sub(phase, msg[idx])).abs();
            assert!(err < (q / 32) as i64, "idx {idx}: err {err}");
        }
    }

    #[test]
    fn trivial_ciphertext_has_exact_phase() {
        let (ring, sk, _) = setup();
        let mut msg = ring.zero_poly();
        msg[3] = 42;
        let ct = GlweCiphertext::trivial(&ring, 1, msg.clone());
        assert_eq!(ct.phase(&ring, &sk), msg);
    }
}
