//! TFHE parameter sets — the paper's Table IV.
//!
//! | Set     | N    | n_lwe | k | lb | security |
//! |---------|------|-------|---|----|----------|
//! | Set-I   | 1024 | 500   | 1 | 2  | 80-bit   |
//! | Set-II  | 1024 | 630   | 1 | 3  | 110-bit  |
//! | Set-III | 2048 | 592   | 1 | 3  | 128-bit  |
//!
//! The paper does not list decomposition bases, keyswitch levels or
//! noise rates; we fill those from the TFHE literature the sets are
//! drawn from (Chillotti et al.; Morphling/Strix use the same sets) and
//! document the choices here. Noise rates are relative to the modulus.

/// Parameters of a TFHE instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TfheParams {
    /// GLWE ring degree `N`.
    pub n: usize,
    /// LWE dimension `n_lwe`.
    pub n_lwe: usize,
    /// GLWE dimension `k`.
    pub k: usize,
    /// Decomposition levels of the bootstrapping key (`lb`).
    pub lb: usize,
    /// log2 of the bootstrapping decomposition base `B_g`.
    pub bg_log: u32,
    /// Decomposition levels of the keyswitching key (`lk`).
    pub lk: usize,
    /// log2 of the keyswitch decomposition base.
    pub ks_base_log: u32,
    /// LWE noise standard deviation relative to the modulus.
    pub lwe_noise: f64,
    /// GLWE noise standard deviation relative to the modulus.
    pub glwe_noise: f64,
    /// Target modulus bits (the paper uses a 32-bit torus; the ring
    /// substitutes the nearest NTT prime).
    pub q_bits: u32,
    /// Human-readable name.
    pub name: &'static str,
    /// Claimed security level in bits (from the paper's Table IV).
    pub security_bits: u32,
}

impl TfheParams {
    /// Paper Set-I: `N=1024, n_lwe=500, k=1, lb=2` (80-bit).
    pub fn set_i() -> Self {
        Self {
            n: 1024,
            n_lwe: 500,
            k: 1,
            lb: 2,
            bg_log: 10,
            lk: 8,
            ks_base_log: 2,
            lwe_noise: 2.44e-5,
            glwe_noise: 3.73e-9,
            q_bits: 32,
            name: "Set-I",
            security_bits: 80,
        }
    }

    /// Paper Set-II: `N=1024, n_lwe=630, k=1, lb=3` (110-bit).
    pub fn set_ii() -> Self {
        Self {
            n: 1024,
            n_lwe: 630,
            k: 1,
            lb: 3,
            bg_log: 7,
            lk: 8,
            ks_base_log: 2,
            lwe_noise: 3.05e-5,
            glwe_noise: 3.73e-9,
            q_bits: 32,
            name: "Set-II",
            security_bits: 110,
        }
    }

    /// Paper Set-III: `N=2048, n_lwe=592, k=1, lb=3` (128-bit).
    pub fn set_iii() -> Self {
        Self {
            n: 2048,
            n_lwe: 592,
            k: 1,
            lb: 3,
            bg_log: 8,
            lk: 8,
            ks_base_log: 2,
            lwe_noise: 6.1e-5,
            // Near-minimal ring noise (sigma ~ 3.2 absolute): with
            // B_g = 2^8 the key-noise term scales as (B_g/2)^2 * sigma^2,
            // so Set-III needs small ring noise for its claimed precision
            // (see EXPERIMENTS.md on noise-parameter substitutions).
            glwe_noise: 7.5e-10,
            q_bits: 32,
            name: "Set-III",
            security_bits: 128,
        }
    }

    /// All three paper sets, in order.
    pub fn paper_sets() -> [Self; 3] {
        [Self::set_i(), Self::set_ii(), Self::set_iii()]
    }

    /// Extracted LWE dimension after sample extraction (`k * N`).
    pub fn extracted_dim(&self) -> usize {
        self.k * self.n
    }

    /// The bootstrapping decomposition base `B_g`.
    pub fn bg(&self) -> u64 {
        1 << self.bg_log
    }

    /// The keyswitch decomposition base.
    pub fn ks_base(&self) -> u64 {
        1 << self.ks_base_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_iv_values() {
        let sets = TfheParams::paper_sets();
        assert_eq!(
            sets.iter().map(|s| s.n).collect::<Vec<_>>(),
            vec![1024, 1024, 2048]
        );
        assert_eq!(
            sets.iter().map(|s| s.n_lwe).collect::<Vec<_>>(),
            vec![500, 630, 592]
        );
        assert_eq!(sets.iter().map(|s| s.lb).collect::<Vec<_>>(), vec![2, 3, 3]);
        assert!(sets.iter().all(|s| s.k == 1));
        assert_eq!(
            sets.iter().map(|s| s.security_bits).collect::<Vec<_>>(),
            vec![80, 110, 128]
        );
    }

    #[test]
    fn decomposition_covers_enough_bits() {
        for s in TfheParams::paper_sets() {
            // The uncovered tail q / Bg^lb must stay well below the
            // message spacing q/16 for gate bootstrapping to work.
            let covered = s.bg_log as usize * s.lb;
            assert!(covered >= 20, "{}: only {covered} bits covered", s.name);
        }
    }
}
