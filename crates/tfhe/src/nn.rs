//! Discretized neural-network inference over TFHE — the functional
//! counterpart of the paper's NN-20/50/100 benchmarks (Chillotti–Joye–
//! Paillier style: one programmable bootstrap per neuron).
//!
//! Activations are signs (`±1`) carried as LWE phases `±A` for a
//! per-layer amplitude `A`; each neuron computes a plaintext-weighted
//! sum of its encrypted inputs (pure LWE linear algebra — the paper's
//! MAC workload) followed by a sign bootstrap (the paper's PBS
//! workload). The amplitude for each layer is chosen so the
//! pre-activation phase never wraps the torus.

use rand::Rng;

use crate::bootstrap::{ClientKey, ServerKey};
use crate::lwe::LweCiphertext;

/// One dense layer with integer weights and biases and sign activation.
#[derive(Debug, Clone)]
pub struct SignLayer {
    /// Row-major weights: `weights[o][i]` connects input `i` to output
    /// `o`. Values are small signed integers.
    pub weights: Vec<Vec<i64>>,
    /// One bias per output neuron (in input-activation units).
    pub biases: Vec<i64>,
}

impl SignLayer {
    /// Builds a layer, validating the shape.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, rows are ragged, or `biases` does
    /// not match the output count.
    pub fn new(weights: Vec<Vec<i64>>, biases: Vec<i64>) -> Self {
        assert!(!weights.is_empty(), "layer needs outputs");
        let fan_in = weights[0].len();
        assert!(fan_in > 0, "layer needs inputs");
        assert!(
            weights.iter().all(|r| r.len() == fan_in),
            "ragged weight matrix"
        );
        assert_eq!(weights.len(), biases.len(), "bias count mismatch");
        Self { weights, biases }
    }

    /// Random `±1` weights and small biases (for tests and demos).
    pub fn random<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        let weights = (0..outputs)
            .map(|_| {
                (0..inputs)
                    .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
                    .collect()
            })
            .collect();
        let biases = (0..outputs).map(|_| rng.gen_range(-2i64..=2)).collect();
        Self::new(weights, biases)
    }

    /// Number of inputs.
    pub fn fan_in(&self) -> usize {
        self.weights[0].len()
    }

    /// Number of outputs.
    pub fn fan_out(&self) -> usize {
        self.weights.len()
    }

    /// Worst-case absolute pre-activation in input-amplitude units.
    pub fn max_preactivation(&self) -> i64 {
        self.weights
            .iter()
            .zip(&self.biases)
            .map(|(row, b)| row.iter().map(|w| w.abs()).sum::<i64>() + b.abs())
            .max()
            .expect("non-empty layer")
    }

    /// Plain reference inference on `±1` activations; `sign(0) = +1`.
    pub fn infer_plain(&self, inputs: &[i64]) -> Vec<i64> {
        assert_eq!(inputs.len(), self.fan_in(), "input arity mismatch");
        self.weights
            .iter()
            .zip(&self.biases)
            .map(|(row, b)| {
                let pre: i64 = row.iter().zip(inputs).map(|(w, x)| w * x).sum::<i64>() + b;
                if pre >= 0 {
                    1
                } else {
                    -1
                }
            })
            .collect()
    }
}

/// A multi-layer sign-activation network.
#[derive(Debug, Clone)]
pub struct DiscreteMlp {
    /// Layers, input-side first.
    pub layers: Vec<SignLayer>,
}

impl DiscreteMlp {
    /// Builds a network, validating layer arities.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive arities mismatch.
    pub fn new(layers: Vec<SignLayer>) -> Self {
        assert!(!layers.is_empty(), "network needs layers");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].fan_out(),
                w[1].fan_in(),
                "layer arity mismatch: {} outputs into {} inputs",
                w[0].fan_out(),
                w[1].fan_in()
            );
        }
        Self { layers }
    }

    /// A random network with the given layer widths (e.g. `[16, 8, 4]`
    /// gives two layers). Mirrors the paper's NN-x construction where
    /// `x` is the depth.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn random<R: Rng + ?Sized>(widths: &[usize], rng: &mut R) -> Self {
        assert!(widths.len() >= 2, "need input and output widths");
        let layers = widths
            .windows(2)
            .map(|w| SignLayer::random(w[0], w[1], rng))
            .collect();
        Self::new(layers)
    }

    /// Network depth (layer count) — the `x` of NN-x.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total bootstrap count for one inference (one per neuron).
    pub fn bootstraps_per_inference(&self) -> usize {
        self.layers.iter().map(SignLayer::fan_out).sum()
    }

    /// Plain reference inference on `±1` inputs.
    pub fn infer_plain(&self, inputs: &[i64]) -> Vec<i64> {
        self.layers
            .iter()
            .fold(inputs.to_vec(), |acc, layer| layer.infer_plain(&acc))
    }

    /// Whether any neuron hits a zero pre-activation on these inputs
    /// (the sign boundary, where encrypted and plain inference may
    /// legitimately disagree). Tests should avoid such inputs.
    pub fn has_boundary_preactivation(&self, inputs: &[i64]) -> bool {
        let mut acts = inputs.to_vec();
        for layer in &self.layers {
            let mut next = Vec::with_capacity(layer.fan_out());
            for (row, b) in layer.weights.iter().zip(&layer.biases) {
                let pre: i64 = row.iter().zip(&acts).map(|(w, x)| w * x).sum::<i64>() + b;
                if pre == 0 {
                    return true;
                }
                next.push(if pre >= 0 { 1 } else { -1 });
            }
            acts = next;
        }
        false
    }
}

impl ClientKey {
    /// Encrypts a `±1` activation vector at the amplitude required by
    /// the network's first layer.
    pub fn encrypt_signs<R: Rng + ?Sized>(
        &self,
        signs: &[i64],
        net: &DiscreteMlp,
        rng: &mut R,
    ) -> Vec<LweCiphertext> {
        let q = self.ctx.q();
        let amp = layer_amplitude(q.value(), &net.layers[0]);
        signs
            .iter()
            .map(|&s| {
                assert!(s == 1 || s == -1, "activations must be ±1");
                let m = if s > 0 { amp } else { q.neg(amp) };
                crate::lwe::LweCiphertext::encrypt(
                    q,
                    &self.lwe_sk,
                    m,
                    self.ctx.params.lwe_noise,
                    rng,
                )
            })
            .collect()
    }

    /// Decrypts a sign vector produced by [`ServerKey::infer_mlp`].
    pub fn decrypt_signs(&self, cts: &[LweCiphertext]) -> Vec<i64> {
        let q = self.ctx.q();
        cts.iter()
            .map(|ct| {
                if q.to_centered(ct.phase(q, &self.lwe_sk)) >= 0 {
                    1
                } else {
                    -1
                }
            })
            .collect()
    }
}

/// Amplitude for a layer's input activations: keeps the worst-case
/// pre-activation strictly inside `(-q/4, q/4)` with a 2x safety margin
/// for noise.
fn layer_amplitude(q: u64, layer: &SignLayer) -> u64 {
    let margin = 2 * layer.max_preactivation().max(1) as u64;
    (q / 4) / margin
}

impl ServerKey {
    /// One dense sign layer: plaintext-weighted sums (LWE linear
    /// algebra) followed by one sign bootstrap per neuron emitting the
    /// next layer's amplitude.
    pub fn infer_layer(
        &self,
        layer: &SignLayer,
        inputs: &[LweCiphertext],
        out_amplitude: u64,
    ) -> Vec<LweCiphertext> {
        assert_eq!(inputs.len(), layer.fan_in(), "input arity mismatch");
        let q = self.ctx.q();
        let in_amp = layer_amplitude(q.value(), layer);
        let tv = vec![out_amplitude; self.ctx.params.n];
        layer
            .weights
            .iter()
            .zip(&layer.biases)
            .map(|(row, &b)| {
                let bias_phase = if b >= 0 {
                    q.reduce(in_amp.wrapping_mul(b as u64))
                } else {
                    q.neg(q.reduce(in_amp.wrapping_mul((-b) as u64)))
                };
                let mut acc = LweCiphertext::trivial(inputs[0].dim(), bias_phase);
                for (&w, x) in row.iter().zip(inputs) {
                    if w == 0 {
                        continue;
                    }
                    let mut term = x.clone();
                    if w < 0 {
                        term.neg_assign(q);
                    }
                    if w.unsigned_abs() > 1 {
                        term.mul_small(q, w.unsigned_abs());
                    }
                    acc.add_assign(q, &term);
                }
                self.bootstrap_with_tv(&acc, &tv)
            })
            .collect()
    }

    /// Full network inference: inputs must be encrypted at the first
    /// layer's amplitude ([`ClientKey::encrypt_signs`] does this).
    /// Output phases are `±q/8`.
    pub fn infer_mlp(&self, net: &DiscreteMlp, inputs: &[LweCiphertext]) -> Vec<LweCiphertext> {
        let q = self.ctx.q().value();
        let mut acts = inputs.to_vec();
        for (i, layer) in net.layers.iter().enumerate() {
            let out_amp = match net.layers.get(i + 1) {
                Some(next) => layer_amplitude(q, next),
                None => q / 8,
            };
            acts = self.infer_layer(layer, &acts, out_amp);
        }
        acts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::TfheContext;
    use crate::ggsw::MulBackend;
    use crate::params::TfheParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys(seed: u64) -> (ClientKey, ServerKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
        let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
        (ck, sk, rng)
    }

    fn random_signs<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<i64> {
        (0..n)
            .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
            .collect()
    }

    #[test]
    fn layer_shape_validation() {
        let layer = SignLayer::new(vec![vec![1, -1, 1], vec![-1, 1, 1]], vec![0, 1]);
        assert_eq!(layer.fan_in(), 3);
        assert_eq!(layer.fan_out(), 2);
        assert_eq!(layer.max_preactivation(), 4);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_weights_rejected() {
        let _ = SignLayer::new(vec![vec![1, -1], vec![1]], vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn mismatched_layers_rejected() {
        let a = SignLayer::new(vec![vec![1, 1]], vec![0]); // 2 -> 1
        let b = SignLayer::new(vec![vec![1, 1]], vec![0]); // 2 -> 1
        let _ = DiscreteMlp::new(vec![a, b]);
    }

    #[test]
    fn plain_inference_signs() {
        let layer = SignLayer::new(vec![vec![1, 1, 1], vec![-1, -1, -1]], vec![0, 0]);
        assert_eq!(layer.infer_plain(&[1, 1, -1]), vec![1, -1]);
        assert_eq!(layer.infer_plain(&[-1, -1, -1]), vec![-1, 1]);
    }

    #[test]
    fn single_layer_encrypted_matches_plain() {
        let (ck, sk, mut rng) = keys(611);
        let layer = SignLayer::new(
            vec![vec![1, -1, 1, 1], vec![-1, 1, 2, -1], vec![1, 1, 1, -2]],
            vec![1, -1, 0],
        );
        let net = DiscreteMlp::new(vec![layer]);
        for trial in 0..4 {
            let inputs = random_signs(4, &mut rng);
            if net.has_boundary_preactivation(&inputs) {
                continue;
            }
            let cts = ck.encrypt_signs(&inputs, &net, &mut rng);
            let out = sk.infer_mlp(&net, &cts);
            assert_eq!(
                ck.decrypt_signs(&out),
                net.infer_plain(&inputs),
                "trial {trial}, inputs {inputs:?}"
            );
        }
    }

    #[test]
    fn two_layer_network_matches_plain() {
        let (ck, sk, mut rng) = keys(612);
        // 6 -> 4 -> 2, random ±1 weights.
        let net = DiscreteMlp::random(&[6, 4, 2], &mut rng);
        assert_eq!(net.depth(), 2);
        assert_eq!(net.bootstraps_per_inference(), 6);
        // Boundary preactivations are common for narrow ±1 networks
        // (an even number of ±1 terms sums to 0 roughly a third of the
        // time per neuron), so give the search enough attempts to make
        // this deterministic-in-practice for any seed stream.
        let mut tested = 0;
        for _ in 0..64 {
            let inputs = random_signs(6, &mut rng);
            if net.has_boundary_preactivation(&inputs) {
                continue;
            }
            let cts = ck.encrypt_signs(&inputs, &net, &mut rng);
            let out = sk.infer_mlp(&net, &cts);
            assert_eq!(ck.decrypt_signs(&out), net.infer_plain(&inputs));
            tested += 1;
            if tested >= 2 {
                break;
            }
        }
        assert!(tested >= 1, "no boundary-free input found");
    }

    #[test]
    fn deep_network_plain_reference() {
        // Depth-20 plain network — the NN-20 shape — sanity check that
        // the reference path scales and stays ±1.
        let mut rng = StdRng::seed_from_u64(613);
        let widths: Vec<usize> = std::iter::once(8)
            .chain(std::iter::repeat_n(8, 20))
            .collect();
        let net = DiscreteMlp::random(&widths, &mut rng);
        assert_eq!(net.depth(), 20);
        let out = net.infer_plain(&random_signs(8, &mut rng));
        assert!(out.iter().all(|&s| s == 1 || s == -1));
    }
}
