//! Single-modulus negacyclic ring used by TFHE.
//!
//! TFHE works over `Z_q[X]/(X^N + 1)` with a *prime* `q = p` chosen as
//! the NTT-friendly prime closest to `2^32` — the paper's FFT→NTT
//! substitution (§II-B: "it is possible to substitute FFT with NTT by
//! selecting a prime modulus p, which satisfies p ≡ 1 mod 2N and is
//! chosen to be the closest prime to q"). All TFHE arithmetic here is
//! exact modular arithmetic; the FFT engine exists as the lossy baseline
//! Trinity's design avoids.

use std::sync::Arc;

use fhe_math::{Modulus, NttTable};

/// Shared ring state: the modulus, degree and NTT tables.
#[derive(Debug, Clone)]
pub struct TfheRing {
    modulus: Modulus,
    table: Arc<NttTable>,
    n: usize,
}

impl TfheRing {
    /// Builds the ring for degree `n` with the prime closest to
    /// `2^target_bits` (the paper's choice is `target_bits = 32`).
    pub fn new(n: usize, target_bits: u32) -> Self {
        let p = fhe_math::prime::prime_near(1u64 << target_bits, n);
        let modulus = Modulus::new(p).expect("prime in range");
        let table = Arc::new(NttTable::new(modulus, n));
        Self { modulus, table, n }
    }

    /// Ring degree `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The coefficient modulus.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// The modulus value `p`.
    #[inline]
    pub fn q(&self) -> u64 {
        self.modulus.value()
    }

    /// The NTT tables.
    #[inline]
    pub fn table(&self) -> &Arc<NttTable> {
        &self.table
    }

    /// Allocates a zero polynomial.
    pub fn zero_poly(&self) -> Vec<u64> {
        vec![0u64; self.n]
    }

    /// Lifts signed coefficients into the ring.
    pub fn poly_from_signed(&self, coeffs: &[i64]) -> Vec<u64> {
        assert_eq!(coeffs.len(), self.n);
        coeffs.iter().map(|&c| self.modulus.from_i64(c)).collect()
    }

    /// `a += b` coefficient-wise.
    pub fn add_assign(&self, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = self.modulus.add(*x, y);
        }
    }

    /// `a -= b` coefficient-wise.
    pub fn sub_assign(&self, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = self.modulus.sub(*x, y);
        }
    }

    /// Negates coefficient-wise.
    pub fn neg_assign(&self, a: &mut [u64]) {
        for x in a.iter_mut() {
            *x = self.modulus.neg(*x);
        }
    }

    /// Returns `a * X^k` (negacyclic rotation; any integer `k`).
    pub fn mul_monomial(&self, a: &[u64], k: i64) -> Vec<u64> {
        let n = self.n as i64;
        let k = k.rem_euclid(2 * n) as usize;
        let mut out = vec![0u64; self.n];
        for (j, &c) in a.iter().enumerate() {
            let idx = j + k;
            if idx < self.n {
                out[idx] = c;
            } else if idx < 2 * self.n {
                out[idx - self.n] = self.modulus.neg(c);
            } else {
                out[idx - 2 * self.n] = c;
            }
        }
        out
    }

    /// Centered representatives of a polynomial.
    pub fn to_centered(&self, a: &[u64]) -> Vec<i64> {
        a.iter().map(|&c| self.modulus.to_centered(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_prime_is_near_2_32() {
        for n in [1024usize, 2048] {
            let ring = TfheRing::new(n, 32);
            let dist = ring.q().abs_diff(1 << 32);
            assert!((dist as f64) < 2e6, "prime too far: {}", ring.q());
            assert_eq!(ring.q() % (2 * n as u64), 1);
        }
    }

    #[test]
    fn monomial_rotation_negacyclic() {
        let ring = TfheRing::new(1024, 32);
        let mut a = ring.zero_poly();
        a[0] = 7;
        let b = ring.mul_monomial(&a, 1024); // X^N = -1
        assert_eq!(b[0], ring.q() - 7);
        let c = ring.mul_monomial(&a, 2048); // X^2N = 1
        assert_eq!(c[0], 7);
        let d = ring.mul_monomial(&a, -1); // X^{-1}: coeff 0 -> -(coeff N-1)
        assert_eq!(d[1023], ring.q() - 7);
    }

    #[test]
    fn add_sub_roundtrip() {
        let ring = TfheRing::new(1024, 32);
        let a: Vec<u64> = (0..1024).map(|i| (i * 31) as u64 % ring.q()).collect();
        let b: Vec<u64> = (0..1024).map(|i| (i * 17 + 5) as u64 % ring.q()).collect();
        let mut c = a.clone();
        ring.add_assign(&mut c, &b);
        ring.sub_assign(&mut c, &b);
        assert_eq!(a, c);
    }
}
