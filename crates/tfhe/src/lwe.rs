//! LWE ciphertexts, keys, keyswitching and modulus switching.
//!
//! The scalar side of TFHE: `(a, b)` with `b = <a, s> + m + e`. The
//! kernels here appear directly in the paper's Algorithm 2: `ModSwitch`
//! (line 1), `TFHE KeySwitch` (lines 16–17), plus `Decompose`.

use fhe_math::Modulus;
use rand::Rng;

/// An LWE secret key. TFHE proper uses binary coefficients; the
/// scheme-conversion layer also produces ternary keys (extracted from
/// CKKS secrets), which every operation here supports.
#[derive(Debug, Clone)]
pub struct LweSecretKey {
    /// Secret coefficients in {-1, 0, 1}.
    pub s: Vec<i64>,
}

impl LweSecretKey {
    /// Samples a binary secret of dimension `n`.
    pub fn generate<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        Self {
            s: fhe_math::sampler::binary(rng, n),
        }
    }

    /// Wraps explicit small signed coefficients.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is outside `{-1, 0, 1}`.
    pub fn from_coeffs(s: Vec<i64>) -> Self {
        assert!(s.iter().all(|&c| (-1..=1).contains(&c)));
        Self { s }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.s.len()
    }
}

/// An LWE ciphertext `(a, b)` modulo a word-size prime.
#[derive(Debug, Clone)]
pub struct LweCiphertext {
    /// Mask.
    pub a: Vec<u64>,
    /// Body `b = <a, s> + m + e`.
    pub b: u64,
}

impl LweCiphertext {
    /// The trivial (noiseless, maskless) encryption of `m`.
    pub fn trivial(n: usize, m: u64) -> Self {
        Self {
            a: vec![0; n],
            b: m,
        }
    }

    /// Dimension of the mask.
    pub fn dim(&self) -> usize {
        self.a.len()
    }

    /// Measured heap bytes of the mask buffer (allocated capacity).
    pub fn heap_bytes(&self) -> usize {
        self.a.capacity() * std::mem::size_of::<u64>()
    }

    /// Encrypts `message` (already encoded as a torus point in `[0, q)`).
    pub fn encrypt<R: Rng + ?Sized>(
        q: &Modulus,
        sk: &LweSecretKey,
        message: u64,
        noise_std: f64,
        rng: &mut R,
    ) -> Self {
        let n = sk.dim();
        let a = fhe_math::sampler::uniform_residues(rng, q, n);
        let e = sample_noise(q, noise_std, rng);
        let mut b = q.add(q.reduce(message), e);
        for (ai, &si) in a.iter().zip(&sk.s) {
            match si {
                1 => b = q.add(b, *ai),
                -1 => b = q.sub(b, *ai),
                _ => {}
            }
        }
        Self { a, b }
    }

    /// Decrypts to the raw phase `b - <a, s>` (message plus noise).
    pub fn phase(&self, q: &Modulus, sk: &LweSecretKey) -> u64 {
        assert_eq!(self.dim(), sk.dim(), "key dimension mismatch");
        let mut acc = self.b;
        for (ai, &si) in self.a.iter().zip(&sk.s) {
            match si {
                1 => acc = q.sub(acc, *ai),
                -1 => acc = q.add(acc, *ai),
                _ => {}
            }
        }
        acc
    }

    /// `self += other` (homomorphic addition).
    pub fn add_assign(&mut self, q: &Modulus, other: &LweCiphertext) {
        assert_eq!(self.dim(), other.dim());
        for (x, &y) in self.a.iter_mut().zip(&other.a) {
            *x = q.add(*x, y);
        }
        self.b = q.add(self.b, other.b);
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, q: &Modulus, other: &LweCiphertext) {
        assert_eq!(self.dim(), other.dim());
        for (x, &y) in self.a.iter_mut().zip(&other.a) {
            *x = q.sub(*x, y);
        }
        self.b = q.sub(self.b, other.b);
    }

    /// Negates the ciphertext.
    pub fn neg_assign(&mut self, q: &Modulus) {
        for x in self.a.iter_mut() {
            *x = q.neg(*x);
        }
        self.b = q.neg(self.b);
    }

    /// Multiplies by a small integer constant.
    pub fn mul_small(&mut self, q: &Modulus, c: u64) {
        let c = q.reduce(c);
        for x in self.a.iter_mut() {
            *x = q.mul(*x, c);
        }
        self.b = q.mul(self.b, c);
    }

    /// ModSwitch: rounds every component from modulus `q` to `2N`
    /// (Algorithm 2 line 1). Returns `(a_tilde, b_tilde)` in `[0, 2N)`.
    pub fn mod_switch(&self, q: &Modulus, two_n: u64) -> (Vec<u64>, u64) {
        let switch = |x: u64| -> u64 {
            // round(x * 2N / q) mod 2N
            let prod = x as u128 * two_n as u128;
            let rounded = (prod + q.value() as u128 / 2) / q.value() as u128;
            (rounded % two_n as u128) as u64
        };
        (self.a.iter().map(|&x| switch(x)).collect(), switch(self.b))
    }
}

/// Samples a discrete Gaussian noise term with standard deviation
/// `noise_std * q` reduced into the modulus.
pub fn sample_noise<R: Rng + ?Sized>(q: &Modulus, noise_std: f64, rng: &mut R) -> u64 {
    let sigma_abs = noise_std * q.value() as f64;
    let e = fhe_math::sampler::gaussian(rng, 1, sigma_abs.max(1e-9))[0];
    q.from_i64(e)
}

/// Approximate gadget decomposition for a non-power-of-two modulus:
/// digits `d_j ∈ [-B/2, B/2)` such that `sum_j d_j * round(q / B^j) ≈ x`.
///
/// Implemented by mapping `x` to its closest multiple of `q / B^levels`
/// and balanced-decomposing in base `B` (the approximate decomposition
/// of the TFHE line of work, valid for any `q` — the enabling detail of
/// the paper's FFT→NTT substitution).
pub fn gadget_decompose(q: u64, x: u64, base_log: u32, levels: usize) -> Vec<i64> {
    // One-coefficient delegation to the shared scalar reference in
    // fhe-math — there is exactly one decomposition kernel in the tree,
    // and the batched backends are asserted bit-identical to it.
    let mut digits = vec![0i64; levels];
    fhe_math::kernel::gadget_decompose_rows(q, base_log, levels, 1, &[x], &mut digits);
    digits
}

/// The gadget element `g_j = round(q / B^j)` for `j = 1..=levels`.
pub fn gadget_element(q: u64, base_log: u32, j: usize) -> u64 {
    let bj = 1u128 << (base_log as usize * j);
    ((q as u128 + bj / 2) / bj) as u64
}

/// An LWE keyswitching key from dimension `n_in` to `n_out`:
/// `ksk[i][j]` encrypts `s_in[i] * g_j` under `s_out` (paper Table I).
#[derive(Debug, Clone)]
pub struct LweKeySwitchKey {
    /// `ksk[i][j]` for `i < n_in`, `j < lk`.
    pub rows: Vec<Vec<LweCiphertext>>,
    /// log2 of the decomposition base.
    pub base_log: u32,
    /// Number of levels `lk`.
    pub levels: usize,
}

impl LweKeySwitchKey {
    /// Generates a keyswitching key.
    pub fn generate<R: Rng + ?Sized>(
        q: &Modulus,
        from: &LweSecretKey,
        to: &LweSecretKey,
        base_log: u32,
        levels: usize,
        noise_std: f64,
        rng: &mut R,
    ) -> Self {
        let rows = from
            .s
            .iter()
            .map(|&si| {
                (1..=levels)
                    .map(|j| {
                        let g = gadget_element(q.value(), base_log, j);
                        let msg = q.mul(q.from_i64(si), g);
                        LweCiphertext::encrypt(q, to, msg, noise_std, rng)
                    })
                    .collect()
            })
            .collect();
        Self {
            rows,
            base_log,
            levels,
        }
    }

    /// Measured heap bytes of the key: allocated capacities of the row
    /// table and every ciphertext mask — one summand of
    /// [`crate::ServerKey::key_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<Vec<LweCiphertext>>()
            + self
                .rows
                .iter()
                .map(|row| {
                    row.capacity() * std::mem::size_of::<LweCiphertext>()
                        + row.iter().map(LweCiphertext::heap_bytes).sum::<usize>()
                })
                .sum::<usize>()
    }

    /// Switches `ct` to the output key:
    /// `c'' = (0, b) - sum_i sum_j a''_i[j] * ksk[i][j]` (Alg. 2 line 17).
    pub fn switch(&self, q: &Modulus, ct: &LweCiphertext) -> LweCiphertext {
        let n_out = self.rows[0][0].dim();
        let mut out = LweCiphertext::trivial(n_out, ct.b);
        for (i, &ai) in ct.a.iter().enumerate() {
            let digits = gadget_decompose(q.value(), ai, self.base_log, self.levels);
            for (j, &d) in digits.iter().enumerate() {
                if d == 0 {
                    continue;
                }
                let mut term = self.rows[i][j].clone();
                if d < 0 {
                    term.mul_small(q, q.reduce((-d) as u64));
                    out.add_assign(q, &term);
                } else {
                    term.mul_small(q, d as u64);
                    out.sub_assign(q, &term);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn q32() -> Modulus {
        Modulus::new(fhe_math::prime::prime_near(1 << 32, 1024)).unwrap()
    }

    #[test]
    fn encrypt_decrypt_phase() {
        let q = q32();
        let mut rng = StdRng::seed_from_u64(81);
        let sk = LweSecretKey::generate(500, &mut rng);
        let msg = q.value() / 8;
        let ct = LweCiphertext::encrypt(&q, &sk, msg, 2.44e-5, &mut rng);
        let phase = ct.phase(&q, &sk);
        let err = q.to_centered(q.sub(phase, msg)).abs();
        assert!(err < (q.value() / 64) as i64, "noise too large: {err}");
    }

    #[test]
    fn homomorphic_linear_ops() {
        let q = q32();
        let mut rng = StdRng::seed_from_u64(82);
        let sk = LweSecretKey::generate(500, &mut rng);
        let m1 = q.value() / 8;
        let m2 = q.value() / 4;
        let c1 = LweCiphertext::encrypt(&q, &sk, m1, 1e-7, &mut rng);
        let c2 = LweCiphertext::encrypt(&q, &sk, m2, 1e-7, &mut rng);
        let mut sum = c1.clone();
        sum.add_assign(&q, &c2);
        let phase = sum.phase(&q, &sk);
        let expect = q.add(m1, m2);
        assert!(q.to_centered(q.sub(phase, expect)).abs() < 1 << 20);

        let mut diff = c2.clone();
        diff.sub_assign(&q, &c1);
        let phase = diff.phase(&q, &sk);
        assert!(q.to_centered(q.sub(phase, q.sub(m2, m1))).abs() < 1 << 20);
    }

    #[test]
    fn gadget_decomposition_reconstructs() {
        let q = q32().value();
        for (base_log, levels) in [(10u32, 2usize), (7, 3), (8, 3), (2, 8)] {
            let tail = q >> (base_log as usize * levels).min(40) as u32;
            for x in [0u64, 1, q / 2, q - 1, 123456789, q / 3] {
                let digits = gadget_decompose(q, x, base_log, levels);
                assert!(digits
                    .iter()
                    .all(|&d| d >= -(1i64 << (base_log - 1)) && d <= (1i64 << (base_log - 1))));
                // Reconstruct sum d_j g_j mod q and compare to x.
                let m = Modulus::new(q).unwrap();
                let mut acc = 0u64;
                for (j, &d) in digits.iter().enumerate() {
                    let g = gadget_element(q, base_log, j + 1);
                    let term = m.mul(m.reduce(d.unsigned_abs()), g);
                    acc = if d >= 0 {
                        m.add(acc, term)
                    } else {
                        m.sub(acc, term)
                    };
                }
                let err = m.to_centered(m.sub(acc, x)).abs();
                let bound = (tail / 2 + (levels as u64) * (1 << base_log)) as i64 + 2;
                assert!(
                    err <= bound,
                    "base 2^{base_log} levels {levels} x={x}: err {err} > {bound}"
                );
            }
        }
    }

    #[test]
    fn mod_switch_rounds() {
        let q = q32();
        let two_n = 2048u64;
        let ct = LweCiphertext {
            a: vec![0, q.value() / 2, q.value() - 1],
            b: q.value() / 4,
        };
        let (a, b) = ct.mod_switch(&q, two_n);
        assert_eq!(a[0], 0);
        assert_eq!(a[1], two_n / 2);
        assert_eq!(a[2], 0); // rounds up to 2N then wraps
        assert_eq!(b, two_n / 4);
    }

    #[test]
    fn keyswitch_preserves_message() {
        let q = q32();
        let mut rng = StdRng::seed_from_u64(83);
        let sk_in = LweSecretKey::generate(1024, &mut rng);
        let sk_out = LweSecretKey::generate(500, &mut rng);
        let ksk = LweKeySwitchKey::generate(&q, &sk_in, &sk_out, 2, 8, 2.44e-5, &mut rng);
        let msg = 3 * (q.value() / 8);
        let ct = LweCiphertext::encrypt(&q, &sk_in, msg, 1e-7, &mut rng);
        let switched = ksk.switch(&q, &ct);
        assert_eq!(switched.dim(), 500);
        let phase = switched.phase(&q, &sk_out);
        let err = q.to_centered(q.sub(phase, msg)).abs();
        assert!(err < (q.value() / 32) as i64, "keyswitch error {err}");
    }
}
