//! Property-based tests: TFHE invariants over random inputs.

use std::sync::OnceLock;

use fhe_tfhe::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    ck: ClientKey,
    sk: ServerKey,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(501);
        let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
        let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
        Fixture { ck, sk }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fresh encryptions decrypt correctly for random bits and seeds.
    #[test]
    fn encrypt_decrypt_bits(bits in proptest::collection::vec(any::<bool>(), 4..10), seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        for &b in &bits {
            let ct = f.ck.encrypt_bit(b, &mut rng);
            prop_assert_eq!(f.ck.decrypt_bit(&ct), b);
        }
    }

    /// De Morgan: NOT(a AND b) == (NOT a) OR (NOT b), homomorphically.
    #[test]
    fn de_morgan(a in any::<bool>(), b in any::<bool>(), seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = f.ck.encrypt_bit(a, &mut rng);
        let cb = f.ck.encrypt_bit(b, &mut rng);
        let lhs = f.sk.nand(&ca, &cb);
        let rhs = f.sk.or(&f.sk.not(&ca), &f.sk.not(&cb));
        prop_assert_eq!(f.ck.decrypt_bit(&lhs), f.ck.decrypt_bit(&rhs));
        prop_assert_eq!(f.ck.decrypt_bit(&lhs), !(a && b));
    }

    /// XOR is associative under encryption.
    #[test]
    fn xor_associative(a in any::<bool>(), b in any::<bool>(), c in any::<bool>(), seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = f.ck.encrypt_bit(a, &mut rng);
        let cb = f.ck.encrypt_bit(b, &mut rng);
        let cc = f.ck.encrypt_bit(c, &mut rng);
        let lhs = f.sk.xor(&f.sk.xor(&ca, &cb), &cc);
        let rhs = f.sk.xor(&ca, &f.sk.xor(&cb, &cc));
        prop_assert_eq!(f.ck.decrypt_bit(&lhs), f.ck.decrypt_bit(&rhs));
        prop_assert_eq!(f.ck.decrypt_bit(&lhs), a ^ b ^ c);
    }

    /// LUT bootstrap computes arbitrary functions over the message space.
    #[test]
    fn lut_bootstrap_random_function(perm_seed in any::<u64>(), m in 0u64..8, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = 8u64;
        // A pseudo-random function [0,8) -> [0,8).
        let func = |x: u64| (x.wrapping_mul(perm_seed | 1) >> 3) % t;
        let lut: Vec<u64> = (0..t).map(|x| f.ck.ctx.encode_message(func(x), t)).collect();
        let ct = f.ck.encrypt_message(m, t, &mut rng);
        let out = f.sk.bootstrap_lut(&ct, &lut);
        prop_assert_eq!(f.ck.decrypt_message(&out, t), func(m));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Gadget decomposition digits are bounded and reconstruct within
    /// the documented error for random values and bases.
    #[test]
    fn gadget_decomposition_bounds(x in any::<u64>(), base_log in 2u32..12, levels in 1usize..5) {
        let q = fhe_math::prime::prime_near(1 << 32, 1024);
        let x = x % q;
        let digits = fhe_tfhe::lwe::gadget_decompose(q, x, base_log, levels);
        let b = 1i64 << base_log;
        prop_assert!(digits.iter().all(|&d| d >= -b / 2 && d <= b / 2));
        // Reconstruction error <= q/(2 B^levels) + levels * B/2 rounding.
        let m = fhe_math::Modulus::new(q).unwrap();
        let mut acc = 0u64;
        for (j, &d) in digits.iter().enumerate() {
            let g = fhe_tfhe::lwe::gadget_element(q, base_log, j + 1);
            let term = m.mul(m.reduce(d.unsigned_abs()), g);
            acc = if d >= 0 { m.add(acc, term) } else { m.sub(acc, term) };
        }
        let err = m.to_centered(m.sub(acc, x)).unsigned_abs();
        let covered = (base_log as u64) * levels as u64;
        let bound = if covered >= 63 { 1 } else { q >> (covered + 1) }
            + levels as u64 * (1 << base_log);
        prop_assert!(err <= bound, "err {err} > bound {bound} (B=2^{base_log}, l={levels})");
    }

    /// LWE linear operations track plaintext arithmetic exactly in the
    /// phase (up to noise).
    #[test]
    fn lwe_linearity(m1 in 0u64..16, m2 in 0u64..16, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = fhe_math::Modulus::new(fhe_math::prime::prime_near(1 << 32, 1024)).unwrap();
        let sk = LweSecretKey::generate(256, &mut rng);
        let delta = q.value() / 64;
        let c1 = LweCiphertext::encrypt(&q, &sk, m1 * delta, 1e-8, &mut rng);
        let c2 = LweCiphertext::encrypt(&q, &sk, m2 * delta, 1e-8, &mut rng);
        let mut sum = c1.clone();
        sum.add_assign(&q, &c2);
        let phase = sum.phase(&q, &sk);
        let expect = q.mul(q.reduce(m1 + m2), delta);
        let err = q.to_centered(q.sub(phase, expect)).abs();
        prop_assert!(err < (delta / 4) as i64, "err {err}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Radix digit split/reassemble is the identity mod t^d.
    #[test]
    fn radix_digit_codec(value in any::<u128>(), bits in 1u32..5, digits in 1usize..10) {
        let p = RadixParams::new(bits, digits);
        let v = value % p.modulus();
        let ds = p.to_digits(v);
        prop_assert_eq!(ds.len(), digits);
        for &d in &ds {
            prop_assert!(d < p.base());
        }
        prop_assert_eq!(p.from_digits(&ds), v);
    }

    /// Encrypt/decrypt radix roundtrip (linear path, no bootstraps).
    #[test]
    fn radix_encrypt_roundtrip(value in any::<u128>(), seed in any::<u64>()) {
        let f = fixture();
        let p = RadixParams::new(2, 4);
        let v = value % p.modulus();
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = f.ck.encrypt_radix(v, p, &mut rng);
        prop_assert_eq!(f.ck.decrypt_radix(&ct), v);
    }

    /// Negacyclic monomial rotation by k then 2N-k is the identity.
    #[test]
    fn ring_monomial_rotation_inverts(k in 1i64..2047, seed in any::<u64>()) {
        let ring = TfheRing::new(1024, 32);
        let q = ring.modulus();
        let mut rng = StdRng::seed_from_u64(seed);
        let poly: Vec<u64> = (0..1024).map(|_| q.reduce(rand::Rng::gen(&mut rng))).collect();
        let fwd = ring.mul_monomial(&poly, k);
        let back = ring.mul_monomial(&fwd, 2048 - k);
        prop_assert_eq!(back, poly);
    }

    /// Plain sign-network inference always emits ±1 and is
    /// deterministic in its inputs.
    #[test]
    fn sign_network_outputs_are_signs(widths_seed in any::<u64>(), input_seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(widths_seed);
        let net = DiscreteMlp::random(&[6, 5, 3], &mut rng);
        let mut irng = StdRng::seed_from_u64(input_seed);
        let inputs: Vec<i64> = (0..6)
            .map(|_| if rand::Rng::gen_bool(&mut irng, 0.5) { 1 } else { -1 })
            .collect();
        let out1 = net.infer_plain(&inputs);
        let out2 = net.infer_plain(&inputs);
        prop_assert_eq!(&out1, &out2);
        prop_assert!(out1.iter().all(|&s| s == 1 || s == -1));
        prop_assert_eq!(out1.len(), 3);
    }

    /// Message encode/decode roundtrip across all LUT-compatible spaces.
    #[test]
    fn message_codec_roundtrip(m in 0u64..64, t_log in 1u32..7) {
        let f = fixture();
        let t = 1u64 << t_log;
        let m = m % t;
        let enc = f.ck.ctx.encode_message(m, t);
        prop_assert_eq!(f.ck.ctx.decode_message(enc, t), m);
    }
}
