//! Property-based tests for the compiler pipeline.
//!
//! Random FHE programs probe the two guarantees the Fig. 8 flow must
//! give: bootstrap insertion always yields a level-sound program, and
//! lowering always yields an acyclic kernel flow every Trinity machine
//! can schedule.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trinity_compiler::{compile, BootstrapPolicy, CompilerConfig, FheProgram, Scheme};
use trinity_core::arch::AcceleratorConfig;
use trinity_core::mapping::{build_machine, MappingPolicy};
use trinity_workloads::ckks_ops::{CkksShape, KeySwitchOpts};
use trinity_workloads::tfhe_ops::TfheShape;

/// Builds a random well-typed program with both schemes and
/// conversions.
fn random_program(seed: u64, ops: usize) -> FheProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = FheProgram::new();
    let mut ckks_vals = vec![p.ckks_input(12)];
    let mut tfhe_vals = vec![p.tfhe_input()];
    for _ in 0..ops {
        match rng.gen_range(0..10) {
            0 => ckks_vals.push(p.ckks_input(rng.gen_range(4..12))),
            1 => {
                let a = ckks_vals[rng.gen_range(0..ckks_vals.len())];
                let b = ckks_vals[rng.gen_range(0..ckks_vals.len())];
                ckks_vals.push(p.hadd(a, b));
            }
            2 | 3 => {
                let a = ckks_vals[rng.gen_range(0..ckks_vals.len())];
                let b = ckks_vals[rng.gen_range(0..ckks_vals.len())];
                let m = p.hmult(a, b);
                ckks_vals.push(p.rescale(m));
            }
            4 => {
                let a = ckks_vals[rng.gen_range(0..ckks_vals.len())];
                ckks_vals.push(p.hrotate(a));
            }
            5 => {
                let a = ckks_vals[rng.gen_range(0..ckks_vals.len())];
                ckks_vals.push(p.pmult(a));
            }
            6 | 7 => {
                let a = tfhe_vals[rng.gen_range(0..tfhe_vals.len())];
                tfhe_vals.push(p.pbs(a));
            }
            8 => {
                let a = ckks_vals[rng.gen_range(0..ckks_vals.len())];
                tfhe_vals.push(p.ckks_to_tfhe(a, 8));
            }
            _ => {
                let a = tfhe_vals[rng.gen_range(0..tfhe_vals.len())];
                ckks_vals.push(p.tfhe_to_ckks(a, 8));
            }
        }
    }
    p
}

fn small_config() -> CompilerConfig {
    CompilerConfig {
        ckks: CkksShape {
            n: 1 << 13,
            levels: 12,
            dnum: 3,
            word_bytes: 4.5,
        },
        tfhe: TfheShape::set_i(),
        ks_opts: KeySwitchOpts::default(),
        policy: BootstrapPolicy {
            min_level: 1,
            restored_level: 8,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bootstrap insertion terminates and leaves the program
    /// level-sound for any random program.
    #[test]
    fn insertion_always_reaches_soundness(seed in any::<u64>(), ops in 1usize..40) {
        let mut p = random_program(seed, ops);
        let policy = BootstrapPolicy { min_level: 1, restored_level: 8 };
        let inserted = p.insert_bootstraps(policy);
        prop_assert!(p.analyze_levels(1, 8).is_ok());
        // Insertion count is bounded by the rescale count (each rescale
        // can force at most one bootstrap).
        let rescales = p
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, trinity_compiler::FheOpKind::Rescale))
            .count();
        prop_assert!(inserted <= rescales);
    }

    /// Lowered graphs are acyclic (dependencies reference earlier
    /// kernels only) and non-trivial for non-trivial programs.
    #[test]
    fn lowering_preserves_acyclicity(seed in any::<u64>(), ops in 1usize..25) {
        let p = random_program(seed, ops);
        let compiled = compile(p, &small_config());
        for k in compiled.graph.kernels() {
            for &d in &k.deps {
                prop_assert!(d < k.id, "kernel {} depends forward on {d}", k.id);
            }
        }
        prop_assert!(!compiled.graph.is_empty());
    }

    /// Every compiled program schedules on the hybrid machine, and the
    /// makespan is positive.
    #[test]
    fn compiled_programs_schedule(seed in any::<u64>(), ops in 1usize..15) {
        let machine = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::Hybrid);
        let p = random_program(seed, ops);
        let compiled = compile(p, &small_config());
        let r = compiled.simulate(&machine);
        prop_assert!(r.total_cycles > 0);
        prop_assert!(r.kernel_count == compiled.graph.len());
    }

    /// Merging programs adds op and value counts exactly and preserves
    /// schemes.
    #[test]
    fn merge_is_disjoint_union(sa in any::<u64>(), sb in any::<u64>(), na in 1usize..15, nb in 1usize..15) {
        let a = random_program(sa, na);
        let b = random_program(sb, nb);
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.len(), a.len() + b.len());
        prop_assert_eq!(merged.value_count(), a.value_count() + b.value_count());
        for v in 0..a.value_count() {
            prop_assert_eq!(merged.scheme(v), a.scheme(v));
        }
        for v in 0..b.value_count() {
            prop_assert_eq!(merged.scheme(a.value_count() + v), b.scheme(v));
        }
        let _ = Scheme::Ckks;
    }

    /// Co-scheduling two random programs is never slower than running
    /// them serially.
    #[test]
    fn coscheduling_never_slower_than_serial(sa in any::<u64>(), sb in any::<u64>()) {
        let machine = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::Hybrid);
        let cfg = small_config();
        let a = random_program(sa, 8);
        let b = random_program(sb, 8);
        let ta = compile(a.clone(), &cfg).simulate(&machine).total_cycles;
        let tb = compile(b.clone(), &cfg).simulate(&machine).total_cycles;
        let mut merged = a;
        merged.merge(&b);
        let tm = compile(merged, &cfg).simulate(&machine).total_cycles;
        prop_assert!(tm <= ta + tb, "merged {tm} vs serial {}", ta + tb);
        prop_assert!(tm >= ta.max(tb), "merged {tm} below max({ta}, {tb})");
    }
}
