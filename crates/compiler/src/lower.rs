//! Lowering: FHE-operation programs to scheduled kernel flows.
//!
//! The back half of the paper's Fig. 8: after bootstrap insertion, the
//! program is expanded into the kernel DAG ("Generate execution flow
//! with Bootstrap") that the event-driven scheduler then places onto
//! the accelerator "without distinguishing which FHE scheme the kernel
//! comes from" (§IV-K). Hazards are eliminated structurally: every
//! kernel's dependencies are the producing ops' sink kernels, so the
//! scheduler can never reorder across a data hazard.

use trinity_core::kernel::{KernelGraph, KernelId, KernelKind};
use trinity_core::mapping::Machine;
use trinity_core::sched::{simulate, SimResult};
use trinity_workloads::ckks_ops::{self, CkksShape, KeySwitchOpts};
use trinity_workloads::conversion;
use trinity_workloads::tfhe_ops::{self, TfheShape};

use crate::ir::{BootstrapPolicy, FheOpKind, FheProgram};

/// Target configuration for compilation.
#[derive(Debug, Clone, Copy)]
pub struct CompilerConfig {
    /// CKKS shape (ring, levels, dnum).
    pub ckks: CkksShape,
    /// TFHE shape (paper Set I-III).
    pub tfhe: TfheShape,
    /// Keyswitch emission options.
    pub ks_opts: KeySwitchOpts,
    /// Bootstrap-insertion policy.
    pub policy: BootstrapPolicy,
}

impl CompilerConfig {
    /// Paper defaults: CKKS `N = 2^16, L = 35`, TFHE Set-I, bootstraps
    /// restore to `L - 14` and chains never drop below level 1.
    pub fn paper_default() -> Self {
        let ckks = CkksShape::paper_default();
        Self {
            ckks,
            tfhe: TfheShape::set_i(),
            ks_opts: KeySwitchOpts::default(),
            policy: BootstrapPolicy {
                min_level: 1,
                restored_level: ckks.levels - 14,
            },
        }
    }
}

/// A compiled program: the kernel flow plus compilation statistics.
#[derive(Debug)]
pub struct CompiledProgram {
    /// The lowered kernel DAG.
    pub graph: KernelGraph,
    /// Bootstraps inserted by the level pass.
    pub inserted_bootstraps: usize,
    /// FHE-operation count after insertion.
    pub op_count: usize,
}

impl CompiledProgram {
    /// Schedules the flow on a machine.
    pub fn simulate(&self, machine: &Machine) -> SimResult {
        simulate(machine, &self.graph)
    }
}

/// Compiles a program: bootstrap insertion, level analysis, lowering.
///
/// # Panics
///
/// Panics if the program references values inconsistently (callers
/// construct programs through the typed [`FheProgram`] API, which
/// prevents this).
pub fn compile(mut program: FheProgram, config: &CompilerConfig) -> CompiledProgram {
    let inserted = program.insert_bootstraps(config.policy);
    let levels = program
        .analyze_levels(config.policy.min_level, config.policy.restored_level)
        .expect("level-sound after insertion");

    let mut graph = KernelGraph::new();
    // Sink kernels per value: downstream ops depend on these.
    let mut sinks: Vec<Vec<KernelId>> = vec![Vec::new(); program.value_count()];

    for op in program.ops() {
        let deps: Vec<KernelId> = op
            .inputs
            .iter()
            .flat_map(|&v| sinks[v].iter().copied())
            .collect();
        let in_level = op
            .inputs
            .iter()
            .filter_map(|v| levels.levels.get(v).copied())
            .min();
        let out = match op.kind {
            FheOpKind::CkksInput { .. } | FheOpKind::TfheInput => {
                // Fresh inputs arrive over HBM.
                let bytes = match op.kind {
                    FheOpKind::CkksInput { level } => {
                        (2 * (level + 1) * config.ckks.n) as u64 * config.ckks.word_bytes as u64
                    }
                    _ => (config.tfhe.n_lwe as u64 + 1) * config.tfhe.word_bytes as u64,
                };
                vec![graph.add(KernelKind::HbmLoad { bytes }, &[])]
            }
            FheOpKind::HAdd => {
                ckks_ops::hadd(&mut graph, &config.ckks, in_level.expect("ckks"), &deps)
            }
            FheOpKind::HMult => ckks_ops::hmult(
                &mut graph,
                &config.ckks,
                in_level.expect("ckks"),
                &deps,
                config.ks_opts,
            ),
            FheOpKind::PMult => {
                ckks_ops::pmult(&mut graph, &config.ckks, in_level.expect("ckks"), &deps)
            }
            FheOpKind::HRotate => ckks_ops::hrotate(
                &mut graph,
                &config.ckks,
                in_level.expect("ckks"),
                &deps,
                config.ks_opts,
            ),
            FheOpKind::Rescale => {
                ckks_ops::rescale(&mut graph, &config.ckks, in_level.expect("ckks"), &deps)
            }
            FheOpKind::CkksBootstrap => {
                let boot = trinity_workloads::apps::bootstrap(&config.ckks);
                let boot_sinks = boot.sinks();
                let offset = graph.append(&boot, &deps);
                boot_sinks.into_iter().map(|s| s + offset).collect()
            }
            FheOpKind::Pbs => tfhe_ops::pbs(&mut graph, &config.tfhe, &deps, true),
            FheOpKind::Gate => tfhe_ops::gate(&mut graph, &config.tfhe, &deps),
            FheOpKind::CkksToTfhe { nslot } => {
                // Algorithm 3: nslot SampleExtracts off the RLWE.
                (0..nslot)
                    .map(|_| graph.add(KernelKind::SampleExtract { n: config.ckks.n }, &deps))
                    .collect()
            }
            FheOpKind::TfheToCkks { nslot } => {
                let mut sub = KernelGraph::new();
                let repack_sinks = conversion::repack(&mut sub, &config.ckks, nslot);
                let offset = graph.append(&sub, &deps);
                repack_sinks.into_iter().map(|s| s + offset).collect()
            }
        };
        sinks[op.output] = out;
    }

    CompiledProgram {
        graph,
        inserted_bootstraps: inserted,
        op_count: program.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FheProgram;
    use trinity_core::arch::AcceleratorConfig;
    use trinity_core::kernel::KernelClass;
    use trinity_core::mapping::{build_machine, MappingPolicy};

    fn small_config() -> CompilerConfig {
        let mut c = CompilerConfig::paper_default();
        // Smaller CKKS so test graphs stay compact.
        c.ckks = CkksShape {
            n: 1 << 14,
            levels: 15,
            dnum: 3,
            word_bytes: 4.5,
        };
        c.policy = BootstrapPolicy {
            min_level: 1,
            restored_level: 10,
        };
        c
    }

    fn trinity_machine() -> Machine {
        build_machine(&AcceleratorConfig::trinity(), MappingPolicy::Hybrid)
    }

    #[test]
    fn single_hmult_matches_manual_builder() {
        let cfg = small_config();
        let mut p = FheProgram::new();
        let a = p.ckks_input(10);
        let b = p.ckks_input(10);
        let _ = p.hmult(a, b);
        let compiled = compile(p, &cfg);

        // Manual: two HBM loads + the hmult builder at level 10.
        let mut manual = KernelGraph::new();
        manual.add(KernelKind::HbmLoad { bytes: 1 }, &[]);
        manual.add(KernelKind::HbmLoad { bytes: 1 }, &[]);
        ckks_ops::hmult(&mut manual, &cfg.ckks, 10, &[], cfg.ks_opts);
        assert_eq!(compiled.graph.len(), manual.len());
        assert_eq!(compiled.inserted_bootstraps, 0);
    }

    #[test]
    fn deep_chain_gets_bootstraps_and_runs() {
        let cfg = small_config();
        let mut p = FheProgram::new();
        let a = p.ckks_input(10);
        let mut cur = a;
        for _ in 0..12 {
            let m = p.hmult(cur, cur);
            cur = p.rescale(m);
        }
        let compiled = compile(p, &cfg);
        assert!(compiled.inserted_bootstraps >= 1);
        let r = compiled.simulate(&trinity_machine());
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn hybrid_program_lowers_all_schemes() {
        let cfg = small_config();
        let mut p = FheProgram::new();
        // The HE3DB pattern: TFHE filter, convert, CKKS aggregate.
        let x = p.tfhe_input();
        let y = p.tfhe_input();
        let flag = p.gate(x, y);
        let packed = p.tfhe_to_ckks(flag, 8);
        let w = p.ckks_input(cfg.ckks.levels);
        let prod = p.hmult(packed, w);
        let _ = p.rescale(prod);
        let compiled = compile(p, &cfg);

        let classes: std::collections::HashSet<KernelClass> = compiled
            .graph
            .kernels()
            .iter()
            .map(|k| k.kind.class())
            .collect();
        // All the multi-modal machinery is exercised.
        for want in [
            KernelClass::Ntt,
            KernelClass::Mac,
            KernelClass::Ewe,
            KernelClass::Rotator,
            KernelClass::Vpu,
            KernelClass::Auto,
        ] {
            assert!(classes.contains(&want), "missing {want:?} kernels");
        }
        let r = compiled.simulate(&trinity_machine());
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn conversion_extract_emits_nslot_kernels() {
        let cfg = small_config();
        let mut p = FheProgram::new();
        let a = p.ckks_input(5);
        let _ = p.ckks_to_tfhe(a, 32);
        let compiled = compile(p, &cfg);
        let extracts = compiled
            .graph
            .kernels()
            .iter()
            .filter(|k| matches!(k.kind, KernelKind::SampleExtract { .. }))
            .count();
        assert_eq!(extracts, 32);
    }

    #[test]
    fn co_scheduling_two_apps_beats_serial() {
        // Paper §IV-K: simultaneous execution of multiple FHE
        // applications on one machine. A serial PBS chain leaves CKKS
        // units idle; co-running a CKKS app overlaps.
        let cfg = small_config();
        let machine = trinity_machine();

        let mut tfhe_app = FheProgram::new();
        let mut cur = tfhe_app.tfhe_input();
        for _ in 0..4 {
            cur = tfhe_app.pbs(cur);
        }

        let mut ckks_app = FheProgram::new();
        let a = ckks_app.ckks_input(10);
        let b = ckks_app.ckks_input(10);
        let mut acc = ckks_app.hmult(a, b);
        for _ in 0..3 {
            acc = ckks_app.rescale(acc);
            let r = ckks_app.hrotate(acc);
            acc = ckks_app.hmult(acc, r);
        }

        let t_tfhe = compile(tfhe_app.clone(), &cfg)
            .simulate(&machine)
            .total_cycles;
        let t_ckks = compile(ckks_app.clone(), &cfg)
            .simulate(&machine)
            .total_cycles;

        let mut merged = tfhe_app;
        merged.merge(&ckks_app);
        let t_merged = compile(merged, &cfg).simulate(&machine).total_cycles;

        assert!(
            t_merged < t_tfhe + t_ckks,
            "co-scheduling ({t_merged}) must beat serial ({} + {})",
            t_tfhe,
            t_ckks
        );
        // And it cannot be faster than the slower app alone.
        assert!(t_merged >= t_tfhe.max(t_ckks));
    }
}
