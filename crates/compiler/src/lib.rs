//! # trinity-compiler — workload allocation for Trinity (paper Fig. 8)
//!
//! The paper's workload-allocation procedure: an FHE application is
//! "firstly decomposed as the kernel flow. Then, the kernel flow is
//! carefully scheduled to eliminate the hardware hazards and guarantee
//! hardware utilization", with a compiler stage that inserts bootstraps
//! into the execution graph. This crate implements that pipeline over
//! the kernel taxonomy of `trinity-core` and the per-operation DAG
//! builders of `trinity-workloads`:
//!
//! 1. [`FheProgram`] — an SSA-style multi-modal IR spanning CKKS, TFHE,
//!    and scheme-conversion operations;
//! 2. [`FheProgram::insert_bootstraps`] — level tracking with automatic
//!    bootstrap insertion (Fig. 8's "Insert Bootstrap");
//! 3. [`compile`] — lowering to a hazard-free [`trinity_core::kernel::KernelGraph`]
//!    that [`trinity_core::sched::simulate`] places onto any machine
//!    model, including co-scheduled multi-application flows (§IV-K).
//!
//! # Examples
//!
//! ```
//! use trinity_compiler::{compile, CompilerConfig, FheProgram};
//! use trinity_core::arch::AcceleratorConfig;
//! use trinity_core::mapping::{build_machine, MappingPolicy};
//!
//! // A hybrid program: TFHE gate, conversion, CKKS multiply.
//! let mut p = FheProgram::new();
//! let x = p.tfhe_input();
//! let y = p.tfhe_input();
//! let flag = p.gate(x, y);
//! let packed = p.tfhe_to_ckks(flag, 8);
//! let w = p.ckks_input(20);
//! let prod = p.hmult(packed, w);
//! let _ = p.rescale(prod);
//!
//! let compiled = compile(p, &CompilerConfig::paper_default());
//! let machine = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::Hybrid);
//! let result = compiled.simulate(&machine);
//! assert!(result.total_cycles > 0);
//! ```
//!
//! Level soundness is a fixpoint, exactly Fig. 8's "Insert Bootstrap"
//! box: [`FheProgram::insert_bootstraps`] re-runs [`LevelAnalysis`]
//! and patches the first level-underflowing rescale with a
//! [`FheOpKind::CkksBootstrap`] until the program analyses clean
//! (each inserted bootstrap restores
//! [`BootstrapPolicy::restored_level`]).
//!
//! Lowering emits kernel flows at the same lazy-chain granularity as
//! the `trinity-workloads` builders — no per-kernel canonicalisation
//! kernels; reduction is one fold per limb at chain boundaries (see
//! `ARCHITECTURE.md` at the workspace root). Run
//! `cargo run --release --example compiler_flow` for the pipeline end
//! to end, or `cargo run --release --example encrypted_db` for the
//! hybrid HE3DB query compiled and scheduled the same way.

#![warn(missing_docs)]

pub mod ir;
pub mod lower;

pub use ir::{
    BootstrapPolicy, FheOp, FheOpKind, FheProgram, LevelAnalysis, LevelUnderflowError, Scheme,
    ValueId,
};
pub use lower::{compile, CompiledProgram, CompilerConfig};
