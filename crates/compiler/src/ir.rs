//! The FHE-operation intermediate representation.
//!
//! The paper's Fig. 8 pipeline starts from an application expressed as
//! FHE operations ("Generate execution graph"). This module is that
//! layer: an SSA-style program over virtual ciphertext values, spanning
//! CKKS, TFHE, and the conversions between them — the property that
//! makes Trinity a *multi-modal* target. The compiler tracks CKKS
//! levels through the program and inserts bootstraps where a chain
//! would exhaust its modulus ("Insert Bootstrap"), before lowering
//! everything to a kernel flow ("Generate execution flow").

use std::collections::HashMap;

/// Identifier of a virtual ciphertext value.
pub type ValueId = usize;

/// Which scheme a value lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Arithmetic FHE (packed approximate numbers).
    Ckks,
    /// Logic FHE (single LWE samples).
    Tfhe,
}

/// One FHE operation (the paper's Table II plus TFHE and conversion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FheOpKind {
    /// A fresh CKKS ciphertext entering at a level.
    CkksInput {
        /// Starting level.
        level: usize,
    },
    /// Ciphertext addition (level-preserving).
    HAdd,
    /// Ciphertext multiplication + relinearisation (rescale separate,
    /// as in Table II).
    HMult,
    /// Plaintext multiplication.
    PMult,
    /// Homomorphic rotation.
    HRotate,
    /// Divide by the top prime; consumes one level.
    Rescale,
    /// Packed CKKS bootstrapping; restores the level.
    CkksBootstrap,
    /// A fresh TFHE LWE ciphertext.
    TfheInput,
    /// Programmable bootstrap.
    Pbs,
    /// Bootstrapped binary gate.
    Gate,
    /// CKKS -> TFHE conversion (Algorithm 3): extracts `nslot` LWEs;
    /// the output value stands for the extracted batch.
    CkksToTfhe {
        /// Number of extracted slots.
        nslot: usize,
    },
    /// TFHE -> CKKS conversion (Algorithms 4-5): repacks `nslot` LWEs.
    TfheToCkks {
        /// Number of packed slots.
        nslot: usize,
    },
}

impl FheOpKind {
    /// Scheme of the operation's *output* value.
    pub fn output_scheme(&self) -> Scheme {
        match self {
            FheOpKind::CkksInput { .. }
            | FheOpKind::HAdd
            | FheOpKind::HMult
            | FheOpKind::PMult
            | FheOpKind::HRotate
            | FheOpKind::Rescale
            | FheOpKind::CkksBootstrap
            | FheOpKind::TfheToCkks { .. } => Scheme::Ckks,
            FheOpKind::TfheInput
            | FheOpKind::Pbs
            | FheOpKind::Gate
            | FheOpKind::CkksToTfhe { .. } => Scheme::Tfhe,
        }
    }

    /// Scheme required of the operation's inputs.
    pub fn input_scheme(&self) -> Option<Scheme> {
        match self {
            FheOpKind::CkksInput { .. } | FheOpKind::TfheInput => None,
            FheOpKind::HAdd
            | FheOpKind::HMult
            | FheOpKind::PMult
            | FheOpKind::HRotate
            | FheOpKind::Rescale
            | FheOpKind::CkksBootstrap
            | FheOpKind::CkksToTfhe { .. } => Some(Scheme::Ckks),
            FheOpKind::Pbs | FheOpKind::Gate | FheOpKind::TfheToCkks { .. } => Some(Scheme::Tfhe),
        }
    }
}

/// One operation instance.
#[derive(Debug, Clone)]
pub struct FheOp {
    /// What to compute.
    pub kind: FheOpKind,
    /// Input values.
    pub inputs: Vec<ValueId>,
    /// Output value.
    pub output: ValueId,
}

/// An SSA-style FHE program.
#[derive(Debug, Clone, Default)]
pub struct FheProgram {
    ops: Vec<FheOp>,
    schemes: Vec<Scheme>,
}

impl FheProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// All operations in program order.
    pub fn ops(&self) -> &[FheOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations have been added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of virtual values.
    pub fn value_count(&self) -> usize {
        self.schemes.len()
    }

    /// Scheme of a value.
    pub fn scheme(&self, v: ValueId) -> Scheme {
        self.schemes[v]
    }

    /// Appends an operation, validating input schemes.
    ///
    /// # Panics
    ///
    /// Panics if an input value does not exist or belongs to the wrong
    /// scheme.
    pub fn push(&mut self, kind: FheOpKind, inputs: &[ValueId]) -> ValueId {
        if let Some(want) = kind.input_scheme() {
            for &v in inputs {
                assert!(v < self.schemes.len(), "input value {v} does not exist");
                assert_eq!(
                    self.schemes[v], want,
                    "op {kind:?} expects {want:?} inputs, value {v} is {:?}",
                    self.schemes[v]
                );
            }
        }
        let output = self.schemes.len();
        self.schemes.push(kind.output_scheme());
        self.ops.push(FheOp {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        output
    }

    /// Fresh CKKS input at `level`.
    pub fn ckks_input(&mut self, level: usize) -> ValueId {
        self.push(FheOpKind::CkksInput { level }, &[])
    }

    /// Fresh TFHE input.
    pub fn tfhe_input(&mut self) -> ValueId {
        self.push(FheOpKind::TfheInput, &[])
    }

    /// `a + b`.
    pub fn hadd(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.push(FheOpKind::HAdd, &[a, b])
    }

    /// `a * b` followed by an explicit [`Self::rescale`].
    pub fn hmult(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.push(FheOpKind::HMult, &[a, b])
    }

    /// `a * plaintext`.
    pub fn pmult(&mut self, a: ValueId) -> ValueId {
        self.push(FheOpKind::PMult, &[a])
    }

    /// Homomorphic rotation.
    pub fn hrotate(&mut self, a: ValueId) -> ValueId {
        self.push(FheOpKind::HRotate, &[a])
    }

    /// Rescale (consumes a level).
    pub fn rescale(&mut self, a: ValueId) -> ValueId {
        self.push(FheOpKind::Rescale, &[a])
    }

    /// Programmable bootstrap.
    pub fn pbs(&mut self, a: ValueId) -> ValueId {
        self.push(FheOpKind::Pbs, &[a])
    }

    /// Bootstrapped binary gate.
    pub fn gate(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.push(FheOpKind::Gate, &[a, b])
    }

    /// Scheme conversion CKKS -> TFHE.
    pub fn ckks_to_tfhe(&mut self, a: ValueId, nslot: usize) -> ValueId {
        self.push(FheOpKind::CkksToTfhe { nslot }, &[a])
    }

    /// Scheme conversion TFHE -> CKKS.
    pub fn tfhe_to_ckks(&mut self, a: ValueId, nslot: usize) -> ValueId {
        self.push(FheOpKind::TfheToCkks { nslot }, &[a])
    }

    /// Concatenates another program (the paper's §IV-K multi-application
    /// scenario: Trinity schedules kernels "without distinguishing which
    /// FHE scheme the kernel comes from", so independent applications
    /// co-run on one machine). Value ids of `other` are offset.
    pub fn merge(&mut self, other: &FheProgram) {
        let offset = self.schemes.len();
        self.schemes.extend(other.schemes.iter().copied());
        for op in &other.ops {
            self.ops.push(FheOp {
                kind: op.kind,
                inputs: op.inputs.iter().map(|&v| v + offset).collect(),
                output: op.output + offset,
            });
        }
    }
}

/// Level-analysis outcome for one program.
#[derive(Debug, Clone)]
pub struct LevelAnalysis {
    /// Level of each CKKS value (absent for TFHE values).
    pub levels: HashMap<ValueId, usize>,
}

/// Error from level analysis: some chain exhausts the modulus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelUnderflowError {
    /// Index of the offending op.
    pub op_index: usize,
    /// The input value that ran out of levels.
    pub value: ValueId,
}

impl std::fmt::Display for LevelUnderflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "op {} exhausts the modulus of value {} (insert a bootstrap)",
            self.op_index, self.value
        )
    }
}

impl std::error::Error for LevelUnderflowError {}

/// Parameters of the bootstrap-insertion pass.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapPolicy {
    /// Rescales refuse to go below this level.
    pub min_level: usize,
    /// Level a bootstrap restores to (`L` minus the bootstrap's own
    /// consumption — 14 levels in the packed pipeline the workload
    /// model uses).
    pub restored_level: usize,
}

impl FheProgram {
    /// Computes the level of every CKKS value.
    ///
    /// `HMult`/`PMult`/`HAdd` align operands to the minimum input level
    /// (the mod-down the functional layer performs); `Rescale` drops one
    /// level.
    ///
    /// # Errors
    ///
    /// Returns [`LevelUnderflowError`] if a rescale would drop below
    /// `min_level`, identifying the op to fix.
    pub fn analyze_levels(
        &self,
        min_level: usize,
        restored_level: usize,
    ) -> Result<LevelAnalysis, LevelUnderflowError> {
        let mut levels: HashMap<ValueId, usize> = HashMap::new();
        for (i, op) in self.ops.iter().enumerate() {
            let min_in = op
                .inputs
                .iter()
                .filter_map(|v| levels.get(v).copied())
                .min();
            let out_level = match op.kind {
                FheOpKind::CkksInput { level } => Some(level),
                FheOpKind::HAdd | FheOpKind::HMult | FheOpKind::PMult | FheOpKind::HRotate => {
                    Some(min_in.expect("ckks op has ckks input"))
                }
                FheOpKind::Rescale => {
                    let l = min_in.expect("rescale input has a level");
                    if l <= min_level {
                        return Err(LevelUnderflowError {
                            op_index: i,
                            value: op.inputs[0],
                        });
                    }
                    Some(l - 1)
                }
                FheOpKind::CkksBootstrap => Some(restored_level),
                FheOpKind::TfheToCkks { .. } => Some(restored_level),
                FheOpKind::TfheInput
                | FheOpKind::Pbs
                | FheOpKind::Gate
                | FheOpKind::CkksToTfhe { .. } => None,
            };
            if let Some(l) = out_level {
                levels.insert(op.output, l);
            }
        }
        Ok(LevelAnalysis { levels })
    }

    /// The Fig. 8 "Insert Bootstrap" pass: repeatedly runs level
    /// analysis and inserts a [`FheOpKind::CkksBootstrap`] in front of
    /// the first offending rescale until the program is level-sound.
    /// Returns the number of bootstraps inserted.
    ///
    /// # Panics
    ///
    /// Panics if `policy.restored_level <= policy.min_level` (no
    /// progress would be possible).
    pub fn insert_bootstraps(&mut self, policy: BootstrapPolicy) -> usize {
        assert!(
            policy.restored_level > policy.min_level,
            "bootstrap must restore above min_level"
        );
        let mut inserted = 0;
        loop {
            match self.analyze_levels(policy.min_level, policy.restored_level) {
                Ok(_) => return inserted,
                Err(e) => {
                    // Insert: boot = Bootstrap(value); rewire the
                    // offending op (and all later uses) to boot.
                    let boot_out = self.schemes.len();
                    self.schemes.push(Scheme::Ckks);
                    let target = e.value;
                    self.ops.insert(
                        e.op_index,
                        FheOp {
                            kind: FheOpKind::CkksBootstrap,
                            inputs: vec![target],
                            output: boot_out,
                        },
                    );
                    for op in self.ops.iter_mut().skip(e.op_index + 1) {
                        for v in op.inputs.iter_mut() {
                            if *v == target {
                                *v = boot_out;
                            }
                        }
                    }
                    inserted += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssa_construction_and_schemes() {
        let mut p = FheProgram::new();
        let a = p.ckks_input(10);
        let b = p.ckks_input(10);
        let m = p.hmult(a, b);
        let r = p.rescale(m);
        assert_eq!(p.scheme(r), Scheme::Ckks);
        let t = p.ckks_to_tfhe(r, 8);
        assert_eq!(p.scheme(t), Scheme::Tfhe);
        let g = p.pbs(t);
        let back = p.tfhe_to_ckks(g, 8);
        assert_eq!(p.scheme(back), Scheme::Ckks);
        assert_eq!(p.len(), 7);
    }

    #[test]
    #[should_panic(expected = "expects Ckks")]
    fn scheme_mismatch_rejected() {
        let mut p = FheProgram::new();
        let t = p.tfhe_input();
        let _ = p.hmult(t, t);
    }

    #[test]
    fn level_analysis_tracks_rescales() {
        let mut p = FheProgram::new();
        let a = p.ckks_input(5);
        let mut cur = a;
        for _ in 0..3 {
            let m = p.hmult(cur, cur);
            cur = p.rescale(m);
        }
        let la = p.analyze_levels(0, 5).expect("no underflow");
        assert_eq!(la.levels[&cur], 2);
    }

    #[test]
    fn underflow_detected() {
        let mut p = FheProgram::new();
        let a = p.ckks_input(1);
        let m1 = p.hmult(a, a);
        let r1 = p.rescale(m1);
        let m2 = p.hmult(r1, r1);
        let _ = p.rescale(m2);
        let err = p.analyze_levels(0, 5).unwrap_err();
        assert_eq!(err.value, m2);
    }

    #[test]
    fn hadd_aligns_to_minimum_level() {
        let mut p = FheProgram::new();
        let a = p.ckks_input(7);
        let b = p.ckks_input(3);
        let s = p.hadd(a, b);
        let la = p.analyze_levels(0, 7).expect("valid");
        assert_eq!(la.levels[&s], 3);
    }

    #[test]
    fn bootstrap_insertion_fixes_deep_chain() {
        // 10 mult+rescale pairs starting from level 4: needs refreshes.
        let mut p = FheProgram::new();
        let a = p.ckks_input(4);
        let mut cur = a;
        for _ in 0..10 {
            let m = p.hmult(cur, cur);
            cur = p.rescale(m);
        }
        let inserted = p.insert_bootstraps(BootstrapPolicy {
            min_level: 1,
            restored_level: 6,
        });
        assert!(inserted >= 1, "deep chain must insert bootstraps");
        // Now level-sound.
        let la = p.analyze_levels(1, 6).expect("sound after insertion");
        assert!(!la.levels.is_empty());
        // Bootstraps actually appear in the op stream.
        let boots = p
            .ops()
            .iter()
            .filter(|o| o.kind == FheOpKind::CkksBootstrap)
            .count();
        assert_eq!(boots, inserted);
    }

    #[test]
    fn shallow_chain_needs_no_bootstrap() {
        let mut p = FheProgram::new();
        let a = p.ckks_input(10);
        let m = p.hmult(a, a);
        let _ = p.rescale(m);
        let inserted = p.insert_bootstraps(BootstrapPolicy {
            min_level: 1,
            restored_level: 8,
        });
        assert_eq!(inserted, 0);
    }

    #[test]
    fn merge_offsets_values() {
        let mut p = FheProgram::new();
        let a = p.ckks_input(5);
        let _ = p.pmult(a);
        let mut q = FheProgram::new();
        let b = q.tfhe_input();
        let _ = q.pbs(b);
        p.merge(&q);
        assert_eq!(p.len(), 4);
        assert_eq!(p.value_count(), 4);
        // Merged op inputs were offset into fresh values.
        assert_eq!(p.ops()[2].output, 2);
        assert_eq!(p.ops()[3].inputs, vec![2]);
        assert_eq!(p.scheme(2), Scheme::Tfhe);
    }
}
