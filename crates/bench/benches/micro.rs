//! Criterion microbenchmarks of the functional crates — the `measured`
//! CPU-baseline rows of the reproduction, exercising the same kernels
//! the accelerator model schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `f` with the process-wide kernel backend forced to `backend`,
/// restoring the previously active one afterwards — how one criterion
/// run measures several backends on the *same* pipeline functions.
fn with_backend<R>(backend: &'static dyn fhe_math::KernelBackend, f: impl FnOnce() -> R) -> R {
    let previous = fhe_math::kernel::active();
    fhe_math::kernel::force(backend);
    let out = f();
    fhe_math::kernel::force(previous);
    out
}

/// NTT across polynomial lengths (the Fig. 1 x-axis, on the host CPU).
fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt_forward");
    for log_n in [10usize, 12, 14] {
        let n = 1 << log_n;
        let p = fhe_math::prime::ntt_primes(50, n, 1)[0];
        let table = fhe_math::NttTable::new(fhe_math::Modulus::new(p).unwrap(), n);
        let mut rng = StdRng::seed_from_u64(1);
        let poly: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut x = poly.clone();
                table.forward(&mut x);
                x
            })
        });
    }
    group.finish();
}

/// NTT variants: reference vs constant-geometry vs four-step.
fn bench_ntt_variants(c: &mut Criterion) {
    let n = 1 << 12;
    let p = fhe_math::prime::ntt_primes(50, n, 1)[0];
    let table = fhe_math::NttTable::new(fhe_math::Modulus::new(p).unwrap(), n);
    let mut rng = StdRng::seed_from_u64(2);
    let poly: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
    let mut group = c.benchmark_group("ntt_variants_4096");
    group.bench_function("reference", |b| {
        b.iter(|| {
            let mut x = poly.clone();
            table.forward(&mut x);
            x
        })
    });
    group.bench_function("constant_geometry", |b| {
        b.iter(|| {
            let mut x = poly.clone();
            table.forward_constant_geometry(&mut x);
            x
        })
    });
    group.finish();
}

/// Harvey lazy-reduction forward NTT against the fully-reduced strict
/// reference — the tentpole's headline micro (acceptance: lazy >= 1.2x
/// at n = 4096).
fn bench_ntt_lazy_vs_strict(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt_lazy_vs_strict");
    for (log_n, bits) in [(12usize, 50u32), (12, 59), (14, 50)] {
        let n = 1 << log_n;
        let p = fhe_math::prime::ntt_primes(bits, n, 1)[0];
        let table = fhe_math::NttTable::new(fhe_math::Modulus::new(p).unwrap(), n);
        let mut rng = StdRng::seed_from_u64(21);
        let poly: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
        // Reuse one buffer and refill by memcpy so the measured loop is
        // the transform, not a per-iteration allocation.
        let mut x = poly.clone();
        group.bench_function(format!("lazy_n{n}_p{bits}"), |b| {
            b.iter(|| {
                x.copy_from_slice(&poly);
                table.forward(&mut x);
                x[0]
            })
        });
        group.bench_function(format!("strict_n{n}_p{bits}"), |b| {
            b.iter(|| {
                x.copy_from_slice(&poly);
                table.forward_strict(&mut x);
                x[0]
            })
        });
    }
    group.finish();
}

/// Full RNS polynomial multiplication on the flat-limb engine:
/// to_eval + pointwise mul + to_coeff across a 3-limb basis.
fn bench_poly_mul_flat(c: &mut Criterion) {
    use fhe_math::{RnsBasis, RnsPoly};
    use std::sync::Arc;
    let mut group = c.benchmark_group("poly_mul_flat");
    for log_n in [12usize, 13] {
        let n = 1 << log_n;
        let basis = Arc::new(RnsBasis::new(&fhe_math::prime::ntt_primes(45, n, 3), n));
        let mut rng = StdRng::seed_from_u64(22);
        let av: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let bv: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let a = RnsPoly::from_signed_coeffs(basis.clone(), &av);
        let mut b = RnsPoly::from_signed_coeffs(basis.clone(), &bv);
        b.to_eval();
        group.bench_function(format!("n{n}_l3"), |bench| {
            bench.iter(|| {
                let mut x = a.clone();
                x.to_eval();
                x.mul_assign_pointwise(&b);
                x.to_coeff();
                x
            })
        });
    }
    group.finish();
}

/// Hybrid keyswitch (the paper's Algorithm 1) at test scale.
fn bench_keyswitch(c: &mut Criterion) {
    use fhe_ckks::*;
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let mut rng = StdRng::seed_from_u64(3);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let rlk = kg.relin_key(&sk, &mut rng);
    let l = ctx.params().max_level();
    let basis = ctx.level_basis(l).clone();
    let mut flat = Vec::with_capacity(basis.len() * ctx.n());
    for m in basis.moduli() {
        flat.extend(fhe_math::sampler::uniform_residues(&mut rng, m, ctx.n()));
    }
    let d = fhe_math::RnsPoly::from_flat(basis, flat, fhe_math::Representation::Eval);
    c.bench_function("ckks_hybrid_keyswitch_n1024_l3", |b| {
        b.iter(|| key_switch(&ctx, &d, &rlk, l))
    });
}

/// The cross-kernel lazy residue chain against its baselines, over the
/// whole keyswitch pipeline (digit NTTs → inner products → iNTT →
/// ModDown) — the tentpole's headline micro (acceptance: lazy >= 1.2x
/// over `canonical`). Three reduction tiers per shape:
/// * `lazy` — cross-kernel `[0, 2p)` chain, one fold per limb at the
///   ModDown boundary (`key_switch`);
/// * `harvey` — per-kernel canonicalisation with internally-lazy
///   Harvey transforms, the PR 2 pipeline (`key_switch_per_kernel`);
/// * `canonical` — the fully-reduced strict oracle, every butterfly
///   canonicalises (`key_switch_strict`).
fn bench_keyswitch_lazy_vs_canonical(c: &mut Criterion) {
    use fhe_ckks::*;
    let mut group = c.benchmark_group("keyswitch_lazy_vs_canonical");
    group.sample_size(20);
    for (params, tag) in [
        (CkksParams::tiny_params(), "n1024_l3"),
        (CkksParams::test_params(), "n4096_l4"),
    ] {
        let ctx = CkksContext::new(params);
        let mut rng = StdRng::seed_from_u64(31);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key(&sk, &mut rng);
        let l = ctx.params().max_level();
        let basis = ctx.level_basis(l).clone();
        let mut flat = Vec::with_capacity(basis.len() * ctx.n());
        for m in basis.moduli() {
            flat.extend(fhe_math::sampler::uniform_residues(&mut rng, m, ctx.n()));
        }
        let d = fhe_math::RnsPoly::from_flat(basis, flat, fhe_math::Representation::Eval);
        group.bench_function(format!("lazy_{tag}"), |b| {
            b.iter(|| key_switch(&ctx, &d, &rlk, l))
        });
        // The same lazy chain under the other kernel backends: the
        // scalar reference and the limb-parallel threaded pool (4
        // lanes). Bit-identical outputs (tests/backend_identity.rs);
        // only the row scheduling differs.
        with_backend(fhe_math::kernel::by_name("scalar").unwrap(), || {
            group.bench_function(format!("lazy_scalar_{tag}"), |b| {
                b.iter(|| key_switch(&ctx, &d, &rlk, l))
            });
        });
        with_backend(fhe_math::kernel::threaded(Some(4)), || {
            group.bench_function(format!("lazy_threaded4_{tag}"), |b| {
                b.iter(|| key_switch(&ctx, &d, &rlk, l))
            });
        });
        group.bench_function(format!("harvey_{tag}"), |b| {
            b.iter(|| key_switch_per_kernel(&ctx, &d, &rlk, l))
        });
        group.bench_function(format!("canonical_{tag}"), |b| {
            b.iter(|| key_switch_strict(&ctx, &d, &rlk, l))
        });
    }
    group.finish();
}

/// Worker-count scaling of the threaded limb-parallel backend on the
/// full lazy keyswitch chain at n=4096/L=4 (the acceptance shape):
/// the `lane` tier is the single-threaded baseline the `threaded:N`
/// tiers are judged against (acceptance: threaded >= 1.3x over lane
/// with >= 4 workers on a multi-core host; on a 1-CPU host the tiers
/// collapse onto the baseline minus dispatch overhead).
fn bench_threaded_scaling(c: &mut Criterion) {
    use fhe_ckks::*;
    let mut group = c.benchmark_group("threaded_scaling");
    group.sample_size(20);
    let ctx = CkksContext::new(CkksParams::test_params());
    let mut rng = StdRng::seed_from_u64(33);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let rlk = kg.relin_key(&sk, &mut rng);
    let l = ctx.params().max_level();
    let basis = ctx.level_basis(l).clone();
    let mut flat = Vec::with_capacity(basis.len() * ctx.n());
    for m in basis.moduli() {
        flat.extend(fhe_math::sampler::uniform_residues(&mut rng, m, ctx.n()));
    }
    let d = fhe_math::RnsPoly::from_flat(basis, flat, fhe_math::Representation::Eval);
    with_backend(fhe_math::kernel::by_name("lanes").unwrap(), || {
        group.bench_function("lane_n4096_l4", |b| {
            b.iter(|| key_switch(&ctx, &d, &rlk, l))
        });
    });
    for workers in [1usize, 2, 4, 8] {
        with_backend(fhe_math::kernel::threaded(Some(workers)), || {
            group.bench_function(format!("threaded{workers}_n4096_l4"), |b| {
                b.iter(|| key_switch(&ctx, &d, &rlk, l))
            });
        });
    }
    group.finish();
}

/// The lazy Galois/rotation chain against its baselines, over the full
/// HRotate pipeline (automorphism on `c0` + hoisted Galois keyswitch of
/// `c1` + recombination) — the rotation counterpart of
/// `keyswitch_lazy_vs_canonical` (acceptance: lazy >= 1.2x over
/// `canonical`). Three reduction tiers per shape:
/// * `lazy` — hoisted `[0, 2p)` chain, automorphism as a lazy slot
///   permutation inside the keyswitch, one fold per limb at ModDown
///   (`Evaluator::apply_galois` / `key_switch_galois`);
/// * `harvey` — per-kernel canonicalisation with internally-lazy
///   Harvey transforms (`key_switch_galois_per_kernel`);
/// * `canonical` — the fully-reduced strict oracle
///   (`Evaluator::apply_galois_strict` / `key_switch_galois_strict`).
fn bench_rotate_lazy_vs_canonical(c: &mut Criterion) {
    use fhe_ckks::*;
    let mut group = c.benchmark_group("rotate_lazy_vs_canonical");
    group.sample_size(20);
    for (params, tag) in [
        (CkksParams::tiny_params(), "n1024_l3"),
        (CkksParams::test_params(), "n4096_l4"),
    ] {
        let ctx = CkksContext::new(params);
        let mut rng = StdRng::seed_from_u64(32);
        let keys = KeyGenerator::new(ctx.clone()).key_set(&[1], &mut rng);
        let enc = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let eval = Evaluator::new(ctx.clone());
        let l = ctx.params().max_level();
        let ct = encryptor.encrypt_sk(&enc.encode_real(&[0.5; 8], l), &keys.secret, &mut rng);
        let g = fhe_math::galois::rotation_galois_element(1, ctx.n());
        let gk = &keys.galois[&g];
        group.bench_function(format!("lazy_{tag}"), |b| {
            b.iter(|| eval.apply_galois(&ct, g, gk))
        });
        // The hoisted rotation chain under the threaded limb-parallel
        // backend (4 lanes) — same pipeline, row-parallel dispatch.
        with_backend(fhe_math::kernel::threaded(Some(4)), || {
            group.bench_function(format!("lazy_threaded4_{tag}"), |b| {
                b.iter(|| eval.apply_galois(&ct, g, gk))
            });
        });
        group.bench_function(format!("harvey_{tag}"), |b| {
            b.iter(|| {
                // The per-kernel middle tier, assembled like
                // apply_galois but over key_switch_galois_per_kernel.
                let mut c0 = ct.c0.clone();
                c0.automorphism(g, ctx.galois());
                let (ks0, ks1) = key_switch_galois_per_kernel(&ctx, &ct.c1, g, gk, ct.level);
                c0.add_assign(&ks0);
                (c0, ks1)
            })
        });
        group.bench_function(format!("canonical_{tag}"), |b| {
            b.iter(|| eval.apply_galois_strict(&ct, g, gk))
        });
    }
    group.finish();
}

/// An 8-rotation encrypted linear layer, sequential vs hoisted: the
/// sequential path runs the full hybrid keyswitch (Decompose + ModUp +
/// digit NTTs + IP + ModDown) once per diagonal rotation; the hoisted
/// path shares Decompose/ModUp/digit-NTTs across the batch and replays
/// only the automorphism → IP → ModDown tail per rotation
/// (`hoist_rotations` / `key_switch_galois_hoisted`). On the 1-CPU CI
/// container the gate is the bit-identity assertion below plus the
/// job-count assertions in the kernel tests, not a wall-clock ratio.
fn bench_rotations_hoisted_vs_sequential(c: &mut Criterion) {
    use trinity_workloads::LinearLayer;
    let mut group = c.benchmark_group("rotations_hoisted_vs_sequential");
    group.sample_size(10);
    // 9x9 dense diagonal layer => exactly 8 rotations.
    let layer = LinearLayer::random(9, 40);
    assert_eq!(layer.rotation_count(), 8);
    // The optimisation must be unobservable in the output bits.
    let seq = layer.eval_sequential();
    let hoisted = layer.eval_hoisted();
    assert_eq!(hoisted.c0.flat(), seq.c0.flat());
    assert_eq!(hoisted.c1.flat(), seq.c1.flat());
    group.bench_function("sequential_8rot", |b| b.iter(|| layer.eval_sequential()));
    group.bench_function("hoisted_8rot", |b| b.iter(|| layer.eval_hoisted()));
    // The hoisted layer under the threaded limb-parallel backend: the
    // pooled BConv/digit-NTT front half row-group-dispatches once.
    with_backend(fhe_math::kernel::threaded(Some(4)), || {
        group.bench_function("hoisted_threaded4_8rot", |b| {
            b.iter(|| layer.eval_hoisted())
        });
    });
    group.finish();
}

/// Cross-request keyswitch coalescing (the `trinity-service` batching
/// path): four independent ciphertexts rotating by the same step under
/// four *different* tenants' switching keys, evaluated as four
/// sequential `apply_galois` calls vs one `apply_galois_coalesced`
/// dispatch that concatenates the batch into single wide kernel calls.
/// On the 1-CPU CI container the gate is the bit-identity assertion
/// below plus the per-dispatch job-count assertions in the service
/// end-to-end suite, not a wall-clock ratio.
fn bench_coalesced_vs_sequential_keyswitch(c: &mut Criterion) {
    use fhe_ckks::*;
    let mut group = c.benchmark_group("coalesced_vs_sequential_keyswitch");
    group.sample_size(10);
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let mut rng = StdRng::seed_from_u64(33);
    let g = fhe_math::galois::rotation_galois_element(1, ctx.n());
    let enc = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let eval = Evaluator::new(ctx.clone());
    let l = ctx.params().max_level();
    let tenants: Vec<(Ciphertext, SwitchingKey)> = (0..4)
        .map(|t| {
            let kg = KeyGenerator::new(ctx.clone());
            let sk = kg.secret_key(&mut rng);
            let ct = encryptor.encrypt_sk(&enc.encode_real(&[t as f64, 0.25], l), &sk, &mut rng);
            (ct, kg.galois_key(&sk, g, &mut rng))
        })
        .collect();
    let jobs: Vec<(&Ciphertext, &SwitchingKey)> = tenants.iter().map(|(ct, gk)| (ct, gk)).collect();
    // Coalescing must be unobservable in the output bits.
    let coalesced = eval.apply_galois_coalesced(&jobs, g);
    for ((ct, gk), wide) in tenants.iter().zip(&coalesced) {
        let alone = eval.apply_galois(ct, g, gk);
        assert_eq!(wide.c0.flat(), alone.c0.flat());
        assert_eq!(wide.c1.flat(), alone.c1.flat());
    }
    group.bench_function("sequential_4x", |b| {
        b.iter(|| {
            tenants
                .iter()
                .map(|(ct, gk)| eval.apply_galois(ct, g, gk))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("coalesced_4x", |b| {
        b.iter(|| eval.apply_galois_coalesced(&jobs, g))
    });
    // Under the threaded limb-parallel backend the coalesced batch is
    // where the row counts come from: 4x the rows per dispatch.
    with_backend(fhe_math::kernel::threaded(Some(4)), || {
        group.bench_function("sequential_threaded4_4x", |b| {
            b.iter(|| {
                tenants
                    .iter()
                    .map(|(ct, gk)| eval.apply_galois(ct, g, gk))
                    .collect::<Vec<_>>()
            })
        });
        group.bench_function("coalesced_threaded4_4x", |b| {
            b.iter(|| eval.apply_galois_coalesced(&jobs, g))
        });
    });
    group.finish();
}

/// Cross-request TFHE gate batching (the `trinity-service` Interactive
/// lane path): four independent gates from one tenant, evaluated as
/// four sequential `apply_gate` calls vs one `apply_gates_batched`
/// dispatch that runs the four blind rotations as a single batched
/// external-product sweep. On the 1-CPU CI container the gate is the
/// bit-identity assertion below plus the batch-width assertions in the
/// service suites, not a wall-clock ratio.
fn bench_gates_batched_vs_sequential(c: &mut Criterion) {
    use fhe_tfhe::*;
    let mut group = c.benchmark_group("gates_batched_vs_sequential");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(34);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
    let server = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
    let cases = [
        (GateOp::Nand, true, true),
        (GateOp::Xor, true, false),
        (GateOp::And, false, true),
        (GateOp::Or, false, false),
    ];
    let inputs: Vec<(GateOp, LweCiphertext, LweCiphertext)> = cases
        .iter()
        .map(|&(op, a, b)| (op, ck.encrypt_bit(a, &mut rng), ck.encrypt_bit(b, &mut rng)))
        .collect();
    let jobs: Vec<BatchedGateJob<'_>> = inputs
        .iter()
        .map(|(op, a, b)| (&server, *op, a, b))
        .collect();
    // Batching must be unobservable in the output bits.
    let batched = apply_gates_batched(&jobs);
    for ((op, a, b), wide) in inputs.iter().zip(&batched) {
        let alone = server.apply_gate(*op, a, b);
        assert_eq!(wide.a, alone.a);
        assert_eq!(wide.b, alone.b);
    }
    group.bench_function("sequential_4x", |b| {
        b.iter(|| {
            inputs
                .iter()
                .map(|(op, x, y)| server.apply_gate(*op, x, y))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("batched_4x", |b| b.iter(|| apply_gates_batched(&jobs)));
    // Under the threaded backend the batched blind rotation is where
    // the fan-out comes from: 4x the external-product rows per sweep.
    with_backend(fhe_math::kernel::threaded(Some(4)), || {
        group.bench_function("sequential_threaded4_4x", |b| {
            b.iter(|| {
                inputs
                    .iter()
                    .map(|(op, x, y)| server.apply_gate(*op, x, y))
                    .collect::<Vec<_>>()
            })
        });
        group.bench_function("batched_threaded4_4x", |b| {
            b.iter(|| apply_gates_batched(&jobs))
        });
    });
    group.finish();
}

/// Homomorphic multiplication end to end.
fn bench_hmult(c: &mut Criterion) {
    use fhe_ckks::*;
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let mut rng = StdRng::seed_from_u64(4);
    let keys = KeyGenerator::new(ctx.clone()).key_set(&[], &mut rng);
    let enc = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let eval = Evaluator::new(ctx.clone());
    let l = ctx.params().max_level();
    let x = encryptor.encrypt_sk(&enc.encode_real(&[0.5; 8], l), &keys.secret, &mut rng);
    let y = encryptor.encrypt_sk(&enc.encode_real(&[0.25; 8], l), &keys.secret, &mut rng);
    c.bench_function("ckks_hmult_rescale", |b| {
        b.iter(|| eval.rescale(&eval.mul(&x, &y, &keys.relin)))
    });
}

/// TFHE external product: exact NTT path vs approximate FFT path — the
/// paper's core substitution, measured on the host.
fn bench_external_product(c: &mut Criterion) {
    use fhe_tfhe::*;
    let ring = TfheRing::new(1024, 32);
    let mut rng = StdRng::seed_from_u64(5);
    let sk = GlweSecretKey::generate(1, 1024, &mut rng);
    let msg: Vec<u64> = (0..1024).map(|i| (i as u64 % 8) * (ring.q() / 8)).collect();
    let glwe = GlweCiphertext::encrypt(&ring, &sk, &msg, 3.73e-9, &mut rng);
    let mut group = c.benchmark_group("tfhe_external_product_n1024");
    for backend in [MulBackend::Ntt, MulBackend::Fft] {
        let ggsw = Ggsw::encrypt_scalar(&ring, &sk, 1, 2, 10, 3.73e-9, backend, &mut rng);
        group.bench_function(format!("{backend:?}"), |b| {
            b.iter(|| ggsw.external_product(&ring, &glwe))
        });
    }
    group.finish();
}

/// One full programmable bootstrap per paper set — the `measured` CPU
/// row of Table VII (OPS = 1/time).
fn bench_pbs(c: &mut Criterion) {
    use fhe_tfhe::*;
    let mut group = c.benchmark_group("tfhe_pbs");
    group.sample_size(10);
    for params in [TfheParams::set_i(), TfheParams::set_ii()] {
        let name = params.name;
        let mut rng = StdRng::seed_from_u64(6);
        let ck = ClientKey::generate(TfheContext::new(params), &mut rng);
        let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
        let ct = ck.encrypt_bit(true, &mut rng);
        group.bench_function(name, |b| b.iter(|| sk.bootstrap_sign(&ct)));
    }
    group.finish();
}

/// LWE repacking (Table IX's `measured` CPU row) at reduced ring degree.
fn bench_repack(c: &mut Criterion) {
    use fhe_ckks::*;
    use fhe_convert::*;
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let mut rng = StdRng::seed_from_u64(7);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let lwe_key = fhe_tfhe::LweSecretKey::from_coeffs(sk.coeffs().to_vec());
    let packer = RlwePacker::new(ctx.clone(), &sk, 1, &mut rng);
    let q0 = *ctx.level_basis(0).modulus(0);
    let delta = q0.value() / (64 * ctx.n() as u64);
    let mut group = c.benchmark_group("repack_n1024_l1");
    group.sample_size(10);
    for nslot in [2usize, 8] {
        let lwes: Vec<fhe_tfhe::LweCiphertext> = (0..nslot)
            .map(|_| fhe_tfhe::LweCiphertext::encrypt(&q0, &lwe_key, delta, 1e-8, &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(nslot), &nslot, |b, _| {
            b.iter(|| packer.convert(&lwes, delta as f64))
        });
    }
    group.finish();
}

/// Low-depth Chebyshev evaluation (EvalMod's workhorse) across degrees.
fn bench_chebyshev(c: &mut Criterion) {
    use fhe_ckks::*;
    let params = CkksParams::new(1 << 10, 8, 40, 2).expect("valid");
    let ctx = CkksContext::new(params);
    let mut rng = StdRng::seed_from_u64(8);
    let keys = KeyGenerator::new(ctx.clone()).key_set(&[], &mut rng);
    let enc = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let eval = Evaluator::new(ctx.clone());
    let l = ctx.params().max_level();
    let ct = encryptor.encrypt_sk(&enc.encode_real(&[0.5; 8], l), &keys.secret, &mut rng);
    let mut group = c.benchmark_group("ckks_chebyshev_n1024");
    group.sample_size(20);
    for degree in [7usize, 31] {
        let fit = ChebyshevPoly::fit(|x| (2.0 * x).tanh(), -1.0, 1.0, degree);
        group.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |b, _| {
            b.iter(|| eval.eval_chebyshev(&ct, &fit.coeffs, &keys.relin, &enc))
        });
    }
    group.finish();
}

/// Full packed CKKS bootstrapping at functional test scale — the
/// `measured` counterpart of Table VI's Bootstrap row.
fn bench_ckks_bootstrap(c: &mut Criterion) {
    use fhe_ckks::bootstrap::bootstrap_test_params;
    use fhe_ckks::*;
    let ctx = CkksContext::new(bootstrap_test_params());
    let boot = Bootstrapper::new(ctx.clone(), BootstrapParams::default());
    let mut rng = StdRng::seed_from_u64(9);
    let keys = boot.generate_keys(&mut rng);
    let enc = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let eval = Evaluator::new(ctx.clone());
    let n = boot.params().sparse_slots;
    let slots = ctx.n() / 2;
    let tiled: Vec<f64> = (0..slots)
        .map(|j| (j % n) as f64 / n as f64 - 0.5)
        .collect();
    let ct = encryptor.encrypt_sk(&enc.encode_real(&tiled, 0), &keys.secret, &mut rng);
    let mut group = c.benchmark_group("ckks_bootstrap_n2048");
    group.sample_size(10);
    group.bench_function("sparse8", |b| {
        b.iter(|| boot.bootstrap(&ct, &eval, &enc, &keys))
    });
    group.finish();
}

/// Radix-integer operations (the HE3DB filter arithmetic): bootstraps
/// per op are the dominant cost.
fn bench_radix_ops(c: &mut Criterion) {
    use fhe_tfhe::*;
    let mut rng = StdRng::seed_from_u64(10);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
    let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
    let p = RadixParams::new(2, 2);
    let a = ck.encrypt_radix(11, p, &mut rng);
    let b_ct = ck.encrypt_radix(6, p, &mut rng);
    let mut group = c.benchmark_group("tfhe_radix_4bit");
    group.sample_size(10);
    group.bench_function("add", |bch| bch.iter(|| sk.radix_add(&a, &b_ct)));
    group.bench_function("lt_scalar", |bch| bch.iter(|| sk.radix_lt_scalar(&a, 8)));
    group.finish();
}

/// One sign-network neuron (linear combination + PBS) — the NN-x unit.
fn bench_nn_neuron(c: &mut Criterion) {
    use fhe_tfhe::*;
    let mut rng = StdRng::seed_from_u64(11);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
    let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
    let layer = SignLayer::new(vec![vec![1, -1, 1, 1, -1, 1, -1, 1]], vec![0]);
    let net = DiscreteMlp::new(vec![layer.clone()]);
    let inputs = ck.encrypt_signs(&[1, 1, -1, 1, -1, -1, 1, 1], &net, &mut rng);
    let q = ck.ctx.q().value();
    let mut group = c.benchmark_group("tfhe_nn");
    group.sample_size(10);
    group.bench_function("neuron_fanin8", |b| {
        b.iter(|| sk.infer_layer(&layer, &inputs, q / 8))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ntt,
    bench_ntt_variants,
    bench_ntt_lazy_vs_strict,
    bench_poly_mul_flat,
    bench_keyswitch,
    bench_keyswitch_lazy_vs_canonical,
    bench_threaded_scaling,
    bench_rotate_lazy_vs_canonical,
    bench_rotations_hoisted_vs_sequential,
    bench_coalesced_vs_sequential_keyswitch,
    bench_gates_batched_vs_sequential,
    bench_hmult,
    bench_external_product,
    bench_pbs,
    bench_repack,
    bench_chebyshev,
    bench_ckks_bootstrap,
    bench_radix_ops,
    bench_nn_neuron
);
criterion_main!(benches);
