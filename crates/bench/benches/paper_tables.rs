//! Regenerates every table and figure of the Trinity paper's evaluation.
//!
//! Run with `cargo bench -p trinity-bench --bench paper_tables`.
//! Rows tagged `paper` are cited constants; rows tagged `modeled` come
//! from this repository's cycle simulator; the criterion `micro` bench
//! supplies the `measured` CPU rows.

use trinity_bench::*;

fn main() {
    println!("Trinity (MICRO 2024) — reproduction of all evaluation tables and figures");
    println!("========================================================================");

    let n_cols = [
        "2^8", "2^9", "2^10", "2^11", "2^12", "2^13", "2^14", "2^15", "2^16",
    ];
    print_table(
        "Fig. 1 — NTT engine utilization vs polynomial length",
        &n_cols,
        &fig1(),
    );
    print_table(
        "Fig. 2 — NTT share of compute [modeled %, paper %]",
        &["modeled", "paper"],
        &fig2(),
    );

    let machines = Machines::build();
    println!("\n[simulating CKKS applications ...]");
    let apps = ckks_apps(&machines);
    print_table(
        "Table VI — CKKS workloads (ms): Bootstrap / HELR / ResNet-20",
        &["Bootstrap", "HELR", "ResNet-20"],
        &table6(&apps),
    );

    println!("\n[simulating PBS batches ...]");
    print_table(
        "Table VII — TFHE PBS throughput (OPS)",
        &["Set-I", "Set-II", "Set-III"],
        &table7(&machines, 64),
    );

    print_table(
        "Table VIII — NN-x latency (ms)",
        &["NN-20", "NN-50", "NN-100"],
        &table8(&machines),
    );

    print_table(
        "Table IX — scheme conversion latency (ms)",
        &["nslot=2", "nslot=8", "nslot=32"],
        &table9(&machines),
    );

    print_table(
        "Table X — HE3DB hybrid query latency (s)",
        &["HE3DB-4096", "HE3DB-16384"],
        &table10(&machines),
    );

    print_table(
        "Table XI — circuit area (mm^2) and power (W), per cluster component",
        &["area", "power"],
        &table11(),
    );

    print_table(
        "Table XII — accelerator comparison",
        &["word", "GHz", "GB/s", "MB", "mm^2", "W"],
        &table12(),
    );

    print_table(
        "Fig. 9 — Trinity vs F1-like NTT utilization",
        &n_cols,
        &fig9(),
    );
    print_table(
        "Fig. 10 — NTTU+EWE(+CU) utilization on CKKS apps (%)",
        &["Bootstrap", "HELR", "ResNet-20"],
        &fig10(&apps),
    );
    print_table(
        "Fig. 11 — normalized latency vs IP-use-EWE ablation",
        &["Bootstrap", "HELR", "ResNet-20"],
        &fig11(&apps),
    );
    print_table(
        "Fig. 12 — fixed vs flexible TFHE utilization (%)",
        &["Set-I", "Set-II", "Set-III"],
        &fig12(&machines, 64),
    );
    print_table(
        "Fig. 13 — per-component utilization, CKKS (%)",
        &["Bootstrap", "HELR", "ResNet-20"],
        &fig13(&apps),
    );
    print_table(
        "Fig. 14 — per-component utilization, TFHE PBS (%)",
        &["Set-I", "Set-II", "Set-III"],
        &fig14(&machines, 64),
    );
    print_table(
        "Fig. 15 — latency vs cluster count (normalized to 2 clusters)",
        &["Bootstrap", "HELR", "NN-20"],
        &fig15(),
    );
    print_table(
        "Fig. 16 — area/power vs cluster count (normalized to 2 clusters)",
        &["area", "power"],
        &fig16(),
    );

    println!("\nDone. See EXPERIMENTS.md for the paper-vs-modeled discussion.");
}
