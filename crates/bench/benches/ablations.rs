//! Ablation sweeps for the design choices DESIGN.md calls out.
//!
//! Run with `cargo bench -p trinity-bench --bench ablations`.

use trinity_bench::ablations::*;
use trinity_bench::print_table;

fn main() {
    println!("Trinity reproduction — ablation studies");
    println!("=======================================");

    print_table(
        "Ablation A — HBM bandwidth sweep",
        &["Bootstrap ms", "PBS kOPS"],
        &ablation_hbm_bandwidth(),
    );

    print_table(
        "Ablation B — scratchpad capacity vs key streaming",
        &["key fraction", "8x HMult ms"],
        &ablation_scratchpad_capacity(),
    );

    print_table(
        "Ablation C — CU-2 pool size",
        &["Bootstrap ms"],
        &ablation_cu_pool(),
    );

    print_table(
        "Ablation D — compiler bootstrap insertion vs level budget",
        &["bootstraps", "latency ms"],
        &ablation_bootstrap_insertion(),
    );

    print_table(
        "Ablation E — multi-application co-scheduling (SS IV-K)",
        &["latency ms"],
        &ablation_coscheduling(),
    );

    print_table(
        "Ablation F — adaptive vs fixed TFHE mapping (PBS OPS)",
        &["adaptive", "fixed", "ratio"],
        &ablation_tfhe_mapping(),
    );

    print_table(
        "Ablation G — inter-cluster NoC bandwidth (SS IV-I layout switches)",
        &["8x HMult ms"],
        &ablation_noc_bandwidth(),
    );
}
