//! Ablation studies beyond the paper's printed figures.
//!
//! DESIGN.md calls out the load-bearing design choices of the Trinity
//! model; each sweep here isolates one of them. These complement the
//! paper's own sensitivity study (Figs. 15/16, cluster count) with the
//! axes the paper discusses qualitatively: off-chip bandwidth (§IV-A),
//! scratchpad-driven key residency (§IV-J), CU pool size (§IV-C), and
//! the compiler's bootstrap insertion / multi-application co-scheduling
//! (§IV-K, Fig. 8).

use trinity_compiler::{compile, BootstrapPolicy, CompilerConfig, FheProgram};
use trinity_core::arch::AcceleratorConfig;
use trinity_core::arch::ComponentKind;
use trinity_core::mapping::{build_machine, MappingPolicy};
use trinity_core::memory::WorkingSet;
use trinity_core::sched::simulate;
use trinity_workloads::apps;
use trinity_workloads::ckks_ops::{CkksShape, KeySwitchOpts};
use trinity_workloads::reference::Source;
use trinity_workloads::tfhe_ops::TfheShape;

use crate::{pbs_throughput, Row};

/// HBM bandwidth sweep: Bootstrap latency (ms) and PBS Set-I
/// throughput (kOPS) at 0.25x / 0.5x / 1x / 2x the paper's 1 TB/s.
pub fn ablation_hbm_bandwidth() -> Vec<Row> {
    let boot_graph = apps::bootstrap(&CkksShape::paper_default());
    [250.0, 500.0, 1000.0, 2000.0]
        .into_iter()
        .map(|gbps| {
            let mut cfg = AcceleratorConfig::trinity();
            cfg.hbm_gbps = gbps;
            let ckks = build_machine(&cfg, MappingPolicy::CkksAdaptive);
            let tfhe = build_machine(&cfg, MappingPolicy::TfheAdaptive);
            let boot_ms = simulate(&ckks, &boot_graph).time_ms;
            let kops = pbs_throughput(&tfhe, &TfheShape::set_i(), 64) / 1e3;
            Row::new(
                &format!("Trinity @ {gbps:.0} GB/s"),
                Source::Modeled,
                vec![boot_ms, kops],
            )
        })
        .collect()
}

/// Scratchpad capacity sweep: the key-residency fraction from the
/// memory model feeds the keyswitch builders' HBM charge, and the
/// Bootstrap latency follows.
pub fn ablation_scratchpad_capacity() -> Vec<Row> {
    let shape = CkksShape::paper_default();
    // One switching key live at a time, reused 4x per BSGS stage.
    let ws = WorkingSet::ckks_bootstrap(shape.n, shape.levels, shape.dnum, 0, shape.word_bytes);
    let machine = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::CkksAdaptive);
    [11.25, 45.0, 90.0, 180.0, 360.0]
        .into_iter()
        .map(|mib| {
            let capacity = mib * 1024.0 * 1024.0;
            let fraction = ws.key_stream_fraction(capacity, 4);
            let mut g = trinity_core::kernel::KernelGraph::new();
            // A keyswitch-dominated probe: 8 HMults at the top level.
            for _ in 0..8 {
                trinity_workloads::ckks_ops::hmult(
                    &mut g,
                    &shape,
                    shape.levels,
                    &[],
                    KeySwitchOpts {
                        hbm_key_fraction: fraction,
                        ..KeySwitchOpts::default()
                    },
                );
            }
            let ms = simulate(&machine, &g).time_ms;
            Row::new(
                &format!("{mib:.2} MiB scratchpad"),
                Source::Modeled,
                vec![fraction, ms],
            )
        })
        .collect()
}

/// CU pool sweep: Trinity with 2 / 4 / 6 CU-2 columns per cluster,
/// Bootstrap latency (the paper's CU count is 4; fewer CUs starve
/// BConv, more saturate).
pub fn ablation_cu_pool() -> Vec<Row> {
    let boot_graph = apps::bootstrap(&CkksShape::paper_default());
    [2usize, 4, 6]
        .into_iter()
        .map(|cu2| {
            let mut cfg = AcceleratorConfig::trinity();
            for spec in cfg.components.iter_mut() {
                if matches!(spec.kind, ComponentKind::Cu { cols: 2 }) {
                    spec.count = cu2;
                }
            }
            cfg.name = format!("Trinity-{cu2}xCU2");
            let machine = build_machine(&cfg, MappingPolicy::CkksAdaptive);
            let ms = simulate(&machine, &boot_graph).time_ms;
            Row::new(
                &format!("{cu2} x CU-2 per cluster"),
                Source::Modeled,
                vec![ms],
            )
        })
        .collect()
}

/// Compiler ablation (Fig. 8): a 24-deep multiply chain compiled
/// against shrinking level budgets. Rows report inserted bootstraps
/// and end-to-end latency — the cost of each forced refresh.
pub fn ablation_bootstrap_insertion() -> Vec<Row> {
    [35usize, 29, 23, 17]
        .into_iter()
        .map(|levels| {
            let ckks = CkksShape {
                levels,
                ..CkksShape::paper_default()
            };
            let config = CompilerConfig {
                ckks,
                tfhe: TfheShape::set_i(),
                ks_opts: KeySwitchOpts::default(),
                policy: BootstrapPolicy {
                    min_level: 1,
                    restored_level: levels - 14,
                },
            };
            let mut p = FheProgram::new();
            let a = p.ckks_input(levels);
            let mut cur = a;
            for _ in 0..24 {
                let m = p.hmult(cur, cur);
                cur = p.rescale(m);
            }
            let compiled = compile(p, &config);
            let machine = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::CkksAdaptive);
            let ms = compiled.simulate(&machine).time_ms;
            Row::new(
                &format!("L = {levels}"),
                Source::Modeled,
                vec![compiled.inserted_bootstraps as f64, ms],
            )
        })
        .collect()
}

/// Multi-application co-scheduling (§IV-K): a PBS batch and a CKKS
/// rotation pipeline, run serially vs merged onto one hybrid machine.
pub fn ablation_coscheduling() -> Vec<Row> {
    let config = CompilerConfig::paper_default();
    let machine = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::Hybrid);

    let mut tfhe_app = FheProgram::new();
    let mut cur = tfhe_app.tfhe_input();
    for _ in 0..8 {
        cur = tfhe_app.pbs(cur);
    }

    let mut ckks_app = FheProgram::new();
    let a = ckks_app.ckks_input(20);
    let b = ckks_app.ckks_input(20);
    let mut acc = ckks_app.hmult(a, b);
    for _ in 0..6 {
        acc = ckks_app.rescale(acc);
        let r = ckks_app.hrotate(acc);
        acc = ckks_app.hmult(acc, r);
    }

    let t_tfhe = compile(tfhe_app.clone(), &config)
        .simulate(&machine)
        .time_ms;
    let t_ckks = compile(ckks_app.clone(), &config)
        .simulate(&machine)
        .time_ms;
    let mut merged = tfhe_app;
    merged.merge(&ckks_app);
    let t_merged = compile(merged, &config).simulate(&machine).time_ms;

    vec![
        Row::new("TFHE app alone", Source::Modeled, vec![t_tfhe]),
        Row::new("CKKS app alone", Source::Modeled, vec![t_ckks]),
        Row::new("serial (sum)", Source::Modeled, vec![t_tfhe + t_ckks]),
        Row::new("co-scheduled (merged)", Source::Modeled, vec![t_merged]),
    ]
}

/// Inter-cluster NoC bandwidth sweep with the §IV-I layout switches
/// modeled explicitly: a keyswitch-heavy probe at 0.25x / 0.5x / 1x /
/// 2x the default all-to-all bandwidth, plus a switches-off reference
/// row. At the design-point bandwidth the switches hide under compute.
pub fn ablation_noc_bandwidth() -> Vec<Row> {
    let shape = CkksShape::paper_default();
    let probe = |opts: KeySwitchOpts| {
        let mut g = trinity_core::kernel::KernelGraph::new();
        for _ in 0..8 {
            trinity_workloads::ckks_ops::hmult(&mut g, &shape, shape.levels, &[], opts);
        }
        g
    };
    let mut rows = Vec::new();
    let off = simulate(
        &build_machine(&AcceleratorConfig::trinity(), MappingPolicy::CkksAdaptive),
        &probe(KeySwitchOpts::default()),
    )
    .time_ms;
    rows.push(Row::new("switches not modeled", Source::Modeled, vec![off]));
    let on = KeySwitchOpts {
        model_layout_switch: true,
        ..KeySwitchOpts::default()
    };
    for scale in [0.25, 0.5, 1.0, 2.0] {
        let mut cfg = AcceleratorConfig::trinity();
        cfg.noc_gbps *= scale;
        let machine = build_machine(&cfg, MappingPolicy::CkksAdaptive);
        let ms = simulate(&machine, &probe(on)).time_ms;
        rows.push(Row::new(
            &format!("NoC @ {:.0} GB/s", cfg.noc_gbps),
            Source::Modeled,
            vec![ms],
        ));
    }
    rows
}

/// NTT/FFT word-width ablation context row: PBS throughput of the TFHE
/// mapping against the fixed-pipeline ablation across the three
/// parameter sets (complements Table VII's Trinity-TFHE rows).
pub fn ablation_tfhe_mapping() -> Vec<Row> {
    let flexible = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::TfheAdaptive);
    let fixed = build_machine(
        &AcceleratorConfig::trinity_tfhe_without_cu(),
        MappingPolicy::TfheFixed,
    );
    let mut rows = Vec::new();
    for (name, shape) in TfheShape::paper_sets() {
        let f = pbs_throughput(&flexible, &shape, 32);
        let x = pbs_throughput(&fixed, &shape, 32);
        rows.push(Row::new(
            &format!("{name}: adaptive vs fixed"),
            Source::Modeled,
            vec![f, x, f / x],
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_bandwidth_never_hurts() {
        let rows = ablation_hbm_bandwidth();
        for w in rows.windows(2) {
            assert!(
                w[1].values[0] <= w[0].values[0] * 1.001,
                "bootstrap latency must not grow with bandwidth"
            );
            assert!(
                w[1].values[1] >= w[0].values[1] * 0.999,
                "PBS throughput must not shrink with bandwidth"
            );
        }
        // And the sweep actually bites at the low end.
        assert!(rows[0].values[0] > rows.last().unwrap().values[0]);
    }

    #[test]
    fn scratchpad_capacity_reduces_key_traffic() {
        let rows = ablation_scratchpad_capacity();
        for w in rows.windows(2) {
            assert!(
                w[1].values[0] <= w[0].values[0] + 1e-12,
                "fraction monotone"
            );
            assert!(w[1].values[1] <= w[0].values[1] * 1.001, "latency monotone");
        }
        // Tiny scratchpad streams cold; big one reaches the reuse floor.
        assert!(rows[0].values[0] > 0.9);
        assert!((rows.last().unwrap().values[0] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn cu_pool_sweep_is_monotone() {
        let rows = ablation_cu_pool();
        for w in rows.windows(2) {
            assert!(w[1].values[0] <= w[0].values[0] * 1.001);
        }
    }

    #[test]
    fn tighter_budgets_insert_more_bootstraps() {
        let rows = ablation_bootstrap_insertion();
        for w in rows.windows(2) {
            assert!(
                w[1].values[0] >= w[0].values[0],
                "fewer levels cannot need fewer bootstraps"
            );
        }
        assert_eq!(rows[0].values[0], 0.0, "L=35 fits 24 muls outright");
        assert!(rows.last().unwrap().values[0] >= 2.0);
    }

    #[test]
    fn coscheduling_beats_serial() {
        let rows = ablation_coscheduling();
        let serial = rows[2].values[0];
        let merged = rows[3].values[0];
        assert!(merged < serial, "co-scheduling {merged} vs serial {serial}");
        assert!(merged >= rows[0].values[0].max(rows[1].values[0]) * 0.999);
    }

    #[test]
    fn adaptive_mapping_beats_fixed_everywhere() {
        for r in ablation_tfhe_mapping() {
            assert!(r.values[2] > 1.0, "{}: ratio {}", r.name, r.values[2]);
        }
    }

    #[test]
    fn noc_switches_hide_at_design_bandwidth() {
        let rows = ablation_noc_bandwidth();
        let off = rows[0].values[0];
        // Design point (1x = 4608 GB/s) is the 4th row.
        let design = rows[3].values[0];
        assert!(
            design < off * 1.25,
            "layout switches should mostly hide: {design} vs {off}"
        );
        // Bandwidth monotone.
        for w in rows[1..].windows(2) {
            assert!(w[1].values[0] <= w[0].values[0] * 1.001);
        }
        // Starved NoC visibly hurts.
        assert!(rows[1].values[0] > design);
    }
}
