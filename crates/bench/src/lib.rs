//! # trinity-bench — regenerates every table and figure of the paper
//!
//! One function per experiment (`fig1` .. `fig16`, `table6` ..
//! `table12`). Each returns structured [`Row`]s — name,
//! [`Source`] provenance
//! (`Paper` transcribed / `Modeled` simulated / `Measured` host
//! wall-clock), values — which the `paper_tables` bench target
//! renders; the test suite asserts the reproduced *shapes* (who wins,
//! by roughly what factor) against the published numbers in
//! [`trinity_workloads::reference`], so a model regression that flips
//! a paper conclusion fails `cargo test`.
//!
//! Three bench targets (see this crate's README for the group map):
//!
//! ```sh
//! cargo bench -p trinity-bench --bench paper_tables  # Tables VI-XII, Figs. 1-16
//! cargo bench -p trinity-bench --bench ablations     # sensitivity sweeps
//! cargo bench -p trinity-bench --bench micro         # CPU kernel micros
//! cargo bench -p trinity-bench --bench micro -- keyswitch   # substring filter
//! ```
//!
//! The `micro` target's backend tiers (`lazy_scalar_*`,
//! `lazy_threaded4_*`, `threaded_scaling/*`) swap the process-wide
//! kernel backend with `fhe_math::kernel::force` between measurements;
//! the workspace `tests/backend_identity.rs` asserts the swapped
//! backends are bit-identical, so those tiers measure row scheduling,
//! never different arithmetic. Simulated (`Modeled`) rows are
//! deterministic; `Measured` rows are host wall-clock under
//! `[profile.bench]` and inherit the functional crates' lazy-domain
//! discipline (one fold per limb at chain boundaries — see
//! `ARCHITECTURE.md`).

#![warn(missing_docs)]

pub mod ablations;

use trinity_core::arch::AcceleratorConfig;
use trinity_core::kernel::KernelGraph;
use trinity_core::mapping::{build_machine, Machine, MappingPolicy};
use trinity_core::ntt_engine::{utilization_sweep, NttEngineModel};
use trinity_core::sched::{simulate, SimResult};
use trinity_workloads::reference::Source;
use trinity_workloads::*;

/// A generic numeric table row: name, provenance, values.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label.
    pub name: String,
    /// Where the numbers come from.
    pub source: Source,
    /// Values (column meaning is table-specific). `NaN` = not reported.
    pub values: Vec<f64>,
}

impl Row {
    fn new(name: &str, source: Source, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            source,
            values,
        }
    }
}

/// Pretty-prints a table.
pub fn print_table(title: &str, columns: &[&str], rows: &[Row]) {
    println!("\n=== {title} ===");
    print!("{:<30} {:>9}", "design", "source");
    for c in columns {
        print!(" {c:>14}");
    }
    println!();
    for r in rows {
        print!("{:<30} {:>9}", r.name, r.source.to_string());
        for v in &r.values {
            if v.is_nan() {
                print!(" {:>14}", "-");
            } else if *v >= 1000.0 {
                print!(" {:>14.0}", v);
            } else {
                print!(" {:>14.3}", v);
            }
        }
        println!();
    }
}

/// Machines used across experiments.
pub struct Machines {
    /// Trinity in CKKS mode.
    pub trinity_ckks: Machine,
    /// Trinity in TFHE mode.
    pub trinity_tfhe: Machine,
    /// Trinity with inner product on the EWE (ablation).
    pub trinity_ip_ewe: Machine,
    /// Trinity with fixed NTT + systolic array (ablation).
    pub trinity_no_cu: Machine,
    /// SHARP.
    pub sharp: Machine,
    /// ARK.
    pub ark: Machine,
    /// Strix.
    pub strix: Machine,
    /// Morphling at 1.2 GHz.
    pub morphling: Machine,
    /// Morphling clocked at 1 GHz.
    pub morphling_1ghz: Machine,
}

impl Machines {
    /// Builds all evaluation machines.
    pub fn build() -> Self {
        Self {
            trinity_ckks: build_machine(&AcceleratorConfig::trinity(), MappingPolicy::CkksAdaptive),
            trinity_tfhe: build_machine(&AcceleratorConfig::trinity(), MappingPolicy::TfheAdaptive),
            trinity_ip_ewe: build_machine(
                &AcceleratorConfig::trinity(),
                MappingPolicy::CkksIpUseEwe,
            ),
            trinity_no_cu: build_machine(
                &AcceleratorConfig::trinity_tfhe_without_cu(),
                MappingPolicy::TfheFixed,
            ),
            sharp: build_machine(&AcceleratorConfig::sharp(), MappingPolicy::Baseline),
            ark: build_machine(&AcceleratorConfig::ark(), MappingPolicy::Baseline),
            strix: build_machine(&AcceleratorConfig::strix(), MappingPolicy::Baseline),
            morphling: build_machine(&AcceleratorConfig::morphling(), MappingPolicy::Baseline),
            morphling_1ghz: build_machine(
                &AcceleratorConfig::morphling_at_freq(1.0),
                MappingPolicy::Baseline,
            ),
        }
    }
}

/// Fig. 1 — utilization of F1-like vs FAB-like NTT engines across
/// polynomial lengths `2^8..2^16`.
pub fn fig1() -> Vec<Row> {
    let f1 = utilization_sweep(&NttEngineModel::f1_like());
    let fab = utilization_sweep(&NttEngineModel::fab_like());
    vec![
        Row::new(
            "F1-like NTT",
            Source::Modeled,
            f1.iter().map(|(_, u)| *u).collect(),
        ),
        Row::new(
            "FAB-like NTT",
            Source::Modeled,
            fab.iter().map(|(_, u)| *u).collect(),
        ),
    ]
}

/// Fig. 9 — Trinity's NTT utilization vs F1-like.
pub fn fig9() -> Vec<Row> {
    let f1 = utilization_sweep(&NttEngineModel::f1_like());
    let tr = utilization_sweep(&NttEngineModel::trinity());
    vec![
        Row::new(
            "F1-like NTT",
            Source::Modeled,
            f1.iter().map(|(_, u)| *u).collect(),
        ),
        Row::new(
            "Trinity NTT",
            Source::Modeled,
            tr.iter().map(|(_, u)| *u).collect(),
        ),
    ]
}

/// Fig. 2 — NTT vs MAC computational breakdown (CKKS KeySwitch at
/// L=23/dnum=3 and PBS under Sets I-III). Values: modeled NTT share %,
/// paper NTT share %.
pub fn fig2() -> Vec<Row> {
    let mut rows = Vec::new();
    let mut shape = CkksShape::paper_default();
    shape.levels = 23;
    let mut g = KernelGraph::new();
    ckks_ops::keyswitch(&mut g, &shape, 23, &[], KeySwitchOpts::default());
    rows.push(Row::new(
        "CKKS KeySwitch",
        Source::Modeled,
        vec![g.modmul_breakdown().ntt_fraction() * 100.0, 59.2],
    ));
    for ((name, s), paper) in TfheShape::paper_sets().iter().zip([75.6, 74.5, 76.3]) {
        let mut g = KernelGraph::new();
        pbs(&mut g, s, &[], false);
        rows.push(Row::new(
            &format!("PBS {name}"),
            Source::Modeled,
            vec![g.modmul_breakdown().ntt_fraction() * 100.0, paper],
        ));
    }
    rows
}

/// Simulated CKKS application latencies (the modeled rows of Table VI).
pub struct CkksAppResults {
    /// Bootstrap on (Trinity, SHARP, Trinity-IP-use-EWE).
    pub bootstrap: (SimResult, SimResult, SimResult),
    /// HELR iteration.
    pub helr: (SimResult, SimResult, SimResult),
    /// ResNet-20.
    pub resnet: (SimResult, SimResult, SimResult),
    /// The same three applications on ARK (Bootstrap, HELR, ResNet).
    pub ark: (SimResult, SimResult, SimResult),
}

/// Runs the three CKKS applications on Trinity, SHARP and the IP-on-EWE
/// ablation.
pub fn ckks_apps(machines: &Machines) -> CkksAppResults {
    let shape = CkksShape::paper_default();
    let gb = bootstrap(&shape);
    let gh = helr(&shape);
    let gr = resnet20(&shape);
    let run = |g: &KernelGraph| {
        (
            simulate(&machines.trinity_ckks, g),
            simulate(&machines.sharp, g),
            simulate(&machines.trinity_ip_ewe, g),
        )
    };
    CkksAppResults {
        bootstrap: run(&gb),
        helr: run(&gh),
        resnet: run(&gr),
        ark: (
            simulate(&machines.ark, &gb),
            simulate(&machines.ark, &gh),
            simulate(&machines.ark, &gr),
        ),
    }
}

/// Table VI — CKKS workload latencies in ms (Bootstrap, HELR, ResNet-20).
pub fn table6(apps: &CkksAppResults) -> Vec<Row> {
    let mut rows: Vec<Row> = reference::TABLE_VI
        .iter()
        .filter(|(name, ..)| *name != "SHARP" && *name != "Trinity")
        .map(|(name, b, h, r)| Row::new(name, Source::Paper, vec![*b, *h, *r]))
        .collect();
    rows.push(Row::new(
        "ARK",
        Source::Modeled,
        vec![apps.ark.0.time_ms, apps.ark.1.time_ms, apps.ark.2.time_ms],
    ));
    rows.push(Row::new(
        "SHARP (paper)",
        Source::Paper,
        vec![3.12, 2.53, 99.0],
    ));
    rows.push(Row::new(
        "SHARP",
        Source::Modeled,
        vec![
            apps.bootstrap.1.time_ms,
            apps.helr.1.time_ms,
            apps.resnet.1.time_ms,
        ],
    ));
    rows.push(Row::new(
        "Trinity (paper)",
        Source::Paper,
        vec![1.92, 1.37, 89.0],
    ));
    rows.push(Row::new(
        "Trinity",
        Source::Modeled,
        vec![
            apps.bootstrap.0.time_ms,
            apps.helr.0.time_ms,
            apps.resnet.0.time_ms,
        ],
    ));
    rows
}

/// Simulated PBS throughput for a machine (OPS).
pub fn pbs_throughput(machine: &Machine, shape: &TfheShape, batch: usize) -> f64 {
    let mut g = KernelGraph::new();
    pbs_batch(&mut g, shape, batch);
    simulate(machine, &g).ops_per_second(batch)
}

/// Table VII — PBS throughput (OPS) under Sets I-III.
pub fn table7(machines: &Machines, batch: usize) -> Vec<Row> {
    let mut rows: Vec<Row> = reference::TABLE_VII
        .iter()
        .filter(|(name, ..)| !name.starts_with("Trinity") && !name.starts_with("Morphling"))
        .map(|(name, a, b, c)| Row::new(name, Source::Paper, vec![*a, *b, *c]))
        .collect();
    let sets = TfheShape::paper_sets();
    let sweep = |m: &Machine| -> Vec<f64> {
        sets.iter()
            .map(|(_, s)| pbs_throughput(m, s, batch))
            .collect()
    };
    rows.push(Row::new("Strix", Source::Modeled, sweep(&machines.strix)));
    rows.push(Row::new(
        "Morphling (paper)",
        Source::Paper,
        vec![147_615.0, 78_692.0, 41_850.0],
    ));
    rows.push(Row::new(
        "Morphling",
        Source::Modeled,
        sweep(&machines.morphling),
    ));
    rows.push(Row::new(
        "Morphling-1GHz",
        Source::Modeled,
        sweep(&machines.morphling_1ghz),
    ));
    rows.push(Row::new(
        "Trinity w/o CU",
        Source::Modeled,
        sweep(&machines.trinity_no_cu),
    ));
    rows.push(Row::new(
        "Trinity (paper)",
        Source::Paper,
        vec![600_060.0, 340_136.0, 180_987.0],
    ));
    rows.push(Row::new(
        "Trinity",
        Source::Modeled,
        sweep(&machines.trinity_tfhe),
    ));
    rows
}

/// Table VIII — NN-20/50/100 latencies in ms.
pub fn table8(machines: &Machines) -> Vec<Row> {
    let mut rows: Vec<Row> = reference::TABLE_VIII
        .iter()
        .filter(|(name, ..)| *name != "Trinity")
        .map(|(name, sec, a, b, c)| {
            Row::new(&format!("{name} [{sec}]"), Source::Paper, vec![*a, *b, *c])
        })
        .collect();
    // NN-x runs under Set-II; affine layers on the VPU.
    let ops = pbs_throughput(&machines.trinity_tfhe, &TfheShape::set_ii(), 64);
    rows.push(Row::new(
        "Trinity (paper) [128-bit]",
        Source::Paper,
        vec![69.86, 146.26, 277.13],
    ));
    rows.push(Row::new(
        "Trinity [128-bit]",
        Source::Modeled,
        [20usize, 50, 100]
            .iter()
            .map(|&layers| NnRecipe::new(layers).latency_ms(ops, 0.05))
            .collect(),
    ));
    rows
}

/// Table IX — scheme conversion (repacking) latency in ms for
/// nslot = 2, 8, 32.
pub fn table9(machines: &Machines) -> Vec<Row> {
    let shape = CkksShape::conversion_benchmark();
    let mut rows: Vec<Row> = reference::TABLE_IX
        .iter()
        .map(|(name, a, b, c)| {
            Row::new(
                &format!("{name}{}", if *name == "Trinity" { " (paper)" } else { "" }),
                Source::Paper,
                vec![*a, *b, *c],
            )
        })
        .collect();
    let vals: Vec<f64> = [2usize, 8, 32]
        .iter()
        .map(|&nslot| {
            let mut g = KernelGraph::new();
            repack(&mut g, &shape, nslot);
            simulate(&machines.trinity_ckks, &g).time_ms
        })
        .collect();
    rows.push(Row::new("Trinity", Source::Modeled, vals));
    rows
}

/// Repack latency on a given machine (used by Table X).
pub fn repack_ms(machine: &Machine, nslot: usize) -> f64 {
    let shape = CkksShape::conversion_benchmark();
    let mut g = KernelGraph::new();
    repack(&mut g, &shape, nslot);
    simulate(machine, &g).time_ms
}

/// Table X — hybrid HE3DB query latency in seconds.
pub fn table10(machines: &Machines) -> Vec<Row> {
    let mut rows: Vec<Row> = reference::TABLE_X
        .iter()
        .map(|(name, a, b)| {
            Row::new(
                &format!(
                    "{name}{}",
                    if name.contains("CPU") { "" } else { " (paper)" }
                ),
                Source::Paper,
                vec![*a, *b],
            )
        })
        .collect();
    let shape = CkksShape::conversion_benchmark();
    for (label, pbs_machine, conv_machine, two_chip) in [
        (
            "SHARP+Morphling",
            &machines.morphling,
            &machines.sharp,
            true,
        ),
        (
            "Trinity",
            &machines.trinity_tfhe,
            &machines.trinity_ckks,
            false,
        ),
    ] {
        let vals: Vec<f64> = [4096usize, 16384]
            .iter()
            .map(|&entries| {
                let recipe = He3dbRecipe::new(entries);
                let pbs_ops = pbs_throughput(pbs_machine, &TfheShape::set_i(), 64);
                let rp = repack_ms(conv_machine, recipe.pack_batch);
                let agg = simulate(conv_machine, &recipe.aggregation_graph(&shape)).time_ms;
                let ms = if two_chip {
                    // RLWE ciphertext bytes at the conversion level.
                    let rlwe_bytes = 2.0 * 9.0 * shape.n as f64 * shape.word_bytes;
                    recipe.latency_two_chip_ms(pbs_ops, rp, agg, rlwe_bytes, 128.0, 5.0)
                } else {
                    recipe.latency_ms(pbs_ops, rp, agg)
                };
                ms / 1e3
            })
            .collect();
        rows.push(Row::new(label, Source::Modeled, vals));
    }
    rows
}

/// Table XI — circuit area and power by component, plus totals.
pub fn table11() -> Vec<Row> {
    let budget = trinity_core::chip_budget(&AcceleratorConfig::trinity());
    let mut rows = Vec::new();
    for (label, count, unit) in &budget.rows {
        rows.push(Row::new(
            &format!("{count}x {label}"),
            Source::Modeled,
            vec![unit.area_mm2 * *count as f64, unit.power_w * *count as f64],
        ));
    }
    rows.push(Row::new(
        "cluster",
        Source::Modeled,
        vec![budget.cluster.area_mm2, budget.cluster.power_w],
    ));
    rows.push(Row::new(
        "4x cluster",
        Source::Modeled,
        vec![
            budget.clusters_total.area_mm2,
            budget.clusters_total.power_w,
        ],
    ));
    rows.push(Row::new(
        "inter-cluster NoC",
        Source::Modeled,
        vec![budget.inter_noc.area_mm2, budget.inter_noc.power_w],
    ));
    rows.push(Row::new(
        "scratchpad",
        Source::Modeled,
        vec![budget.scratchpad.area_mm2, budget.scratchpad.power_w],
    ));
    rows.push(Row::new(
        "HBM PHY",
        Source::Modeled,
        vec![budget.hbm_phy.area_mm2, budget.hbm_phy.power_w],
    ));
    rows.push(Row::new(
        "Total",
        Source::Modeled,
        vec![budget.total.area_mm2, budget.total.power_w],
    ));
    rows.push(Row::new(
        "Total (paper)",
        Source::Paper,
        vec![157.26, 229.36],
    ));
    rows
}

/// Table XII — cross-accelerator comparison
/// (word bits, freq GHz, BW GB/s, on-chip MB, area mm², power W).
pub fn table12() -> Vec<Row> {
    let mut rows: Vec<Row> = reference::TABLE_XII
        .iter()
        .map(|(name, bits, freq, bw, mem, _tech, area, power)| {
            Row::new(
                name,
                Source::Paper,
                vec![*bits as f64, *freq, *bw, *mem, *area, *power],
            )
        })
        .collect();
    let b = trinity_core::chip_budget(&AcceleratorConfig::trinity());
    rows.push(Row::new(
        "Trinity (modeled)",
        Source::Modeled,
        vec![36.0, 1.0, 1000.0, 191.0, b.total.area_mm2, b.total.power_w],
    ));
    rows
}

/// Fig. 10 — mean NTTU+EWE(+CU) utilization on CKKS apps, percent.
pub fn fig10(apps: &CkksAppResults) -> Vec<Row> {
    let util = |r: &SimResult, with_cu: bool| {
        let mut parts = vec![r.mean_utilization("NTTU"), r.mean_utilization("EWE")];
        if with_cu {
            parts.push(r.mean_utilization("CU-"));
        }
        parts.iter().sum::<f64>() / parts.len() as f64 * 100.0
    };
    vec![
        Row::new(
            "NTTU+EWE (IP-use-EWE)",
            Source::Modeled,
            vec![
                util(&apps.bootstrap.2, false),
                util(&apps.helr.2, false),
                util(&apps.resnet.2, false),
            ],
        ),
        Row::new(
            "NTTU+EWE+CU (Trinity)",
            Source::Modeled,
            vec![
                util(&apps.bootstrap.0, true),
                util(&apps.helr.0, true),
                util(&apps.resnet.0, true),
            ],
        ),
    ]
}

/// Fig. 11 — normalized latency of Trinity vs the IP-on-EWE ablation.
pub fn fig11(apps: &CkksAppResults) -> Vec<Row> {
    let norm = |t: &SimResult, e: &SimResult| t.time_ms / e.time_ms;
    vec![
        Row::new(
            "Trinity-CKKS-IP-use-EWE",
            Source::Modeled,
            vec![1.0, 1.0, 1.0],
        ),
        Row::new(
            "Trinity",
            Source::Modeled,
            vec![
                norm(&apps.bootstrap.0, &apps.bootstrap.2),
                norm(&apps.helr.0, &apps.helr.2),
                norm(&apps.resnet.0, &apps.resnet.2),
            ],
        ),
    ]
}

/// Fig. 12 — NTT+MAC utilization of the fixed vs flexible TFHE designs
/// under PBS (percent per set).
pub fn fig12(machines: &Machines, batch: usize) -> Vec<Row> {
    let mut fixed = Vec::new();
    let mut flex = Vec::new();
    for (_, s) in TfheShape::paper_sets() {
        let mut g = KernelGraph::new();
        pbs_batch(&mut g, &s, batch);
        let rf = simulate(&machines.trinity_no_cu, &g);
        let rx = simulate(&machines.trinity_tfhe, &g);
        fixed.push((rf.mean_utilization("NTTU") + rf.mean_utilization("SA")) / 2.0 * 100.0);
        flex.push((rx.mean_utilization("NTTU") + rx.mean_utilization("CU-")) / 2.0 * 100.0);
    }
    vec![
        Row::new("Trinity-TFHE w/o CU (NTTU+SA)", Source::Modeled, fixed),
        Row::new("Trinity-TFHE w/ CU (NTTU+CU)", Source::Modeled, flex),
    ]
}

/// Fig. 13 — per-component utilization within CKKS workloads (percent):
/// columns are Bootstrap, HELR, ResNet-20.
pub fn fig13(apps: &CkksAppResults) -> Vec<Row> {
    let comps = [
        "NTTU", "EWE", "AutoU", "CU-1", "CU-2a", "CU-2b", "CU-2c", "CU-2d", "CU-3",
    ];
    comps
        .iter()
        .map(|c| {
            Row::new(
                c,
                Source::Modeled,
                vec![
                    apps.bootstrap.0.mean_utilization(c) * 100.0,
                    apps.helr.0.mean_utilization(c) * 100.0,
                    apps.resnet.0.mean_utilization(c) * 100.0,
                ],
            )
        })
        .collect()
}

/// Fig. 14 — per-component utilization within TFHE PBS (percent):
/// columns are Set-I, Set-II, Set-III.
pub fn fig14(machines: &Machines, batch: usize) -> Vec<Row> {
    let comps = [
        "NTTU", "EWE", "CU-1", "CU-2a", "CU-2b", "CU-2c", "CU-2d", "CU-3", "Rotator", "VPU",
    ];
    let results: Vec<SimResult> = TfheShape::paper_sets()
        .iter()
        .map(|(_, s)| {
            let mut g = KernelGraph::new();
            pbs_batch(&mut g, s, batch);
            simulate(&machines.trinity_tfhe, &g)
        })
        .collect();
    comps
        .iter()
        .map(|c| {
            Row::new(
                c,
                Source::Modeled,
                results
                    .iter()
                    .map(|r| r.mean_utilization(c) * 100.0)
                    .collect(),
            )
        })
        .collect()
}

/// Fig. 15 — latency sensitivity to cluster count (normalized to 2
/// clusters). Columns: Bootstrap, HELR, NN-20.
pub fn fig15() -> Vec<Row> {
    let shape = CkksShape::paper_default();
    let gb = bootstrap(&shape);
    let gh = helr(&shape);
    let mut per_cluster: Vec<(usize, Vec<f64>)> = Vec::new();
    for clusters in [2usize, 4, 8] {
        let cfg = AcceleratorConfig::trinity_with_clusters(clusters);
        let ckks = build_machine(&cfg, MappingPolicy::CkksAdaptive);
        let tfhe = build_machine(&cfg, MappingPolicy::TfheAdaptive);
        let boot = simulate(&ckks, &gb).time_ms;
        let helr_ms = simulate(&ckks, &gh).time_ms;
        let pbs_ops = pbs_throughput(&tfhe, &TfheShape::set_i(), 64);
        let nn = NnRecipe::new(20).latency_ms(pbs_ops, 0.05);
        per_cluster.push((clusters, vec![boot, helr_ms, nn]));
    }
    let base = per_cluster[0].1.clone();
    per_cluster
        .into_iter()
        .map(|(c, vals)| {
            Row::new(
                &format!("{c} clusters"),
                Source::Modeled,
                vals.iter().zip(&base).map(|(v, b)| v / b).collect(),
            )
        })
        .collect()
}

/// Fig. 16 — area/power sensitivity to cluster count (normalized to 2
/// clusters). Columns: area, power.
pub fn fig16() -> Vec<Row> {
    let base = trinity_core::chip_budget(&AcceleratorConfig::trinity_with_clusters(2));
    [2usize, 4, 8]
        .iter()
        .map(|&c| {
            let b = trinity_core::chip_budget(&AcceleratorConfig::trinity_with_clusters(c));
            Row::new(
                &format!("{c} clusters"),
                Source::Modeled,
                vec![
                    b.total.area_mm2 / base.total.area_mm2,
                    b.total.power_w / base.total.power_w,
                ],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shapes() {
        let rows = fig1();
        let f1 = &rows[0].values;
        let fab = &rows[1].values;
        assert!(f1.last() > f1.first(), "F1-like rises with N");
        assert!(fab.last() < fab.first(), "FAB-like falls with N");
    }

    #[test]
    fn fig2_matches_paper_breakdown() {
        for row in fig2() {
            let (got, paper) = (row.values[0], row.values[1]);
            assert!(
                (got - paper).abs() < 8.0,
                "{}: {got:.1}% vs paper {paper:.1}%",
                row.name
            );
        }
    }

    #[test]
    fn trinity_beats_sharp_on_ckks() {
        let machines = Machines::build();
        let apps = ckks_apps(&machines);
        let speedup_boot = apps.bootstrap.1.time_ms / apps.bootstrap.0.time_ms;
        let speedup_helr = apps.helr.1.time_ms / apps.helr.0.time_ms;
        assert!(
            (1.2..=2.2).contains(&speedup_boot),
            "bootstrap speedup {speedup_boot:.2} (paper 1.63)"
        );
        assert!(
            (1.1..=2.4).contains(&speedup_helr),
            "HELR speedup {speedup_helr:.2} (paper 1.85)"
        );
    }

    #[test]
    fn ark_lands_behind_sharp() {
        // Paper Table VI ordering: Trinity < SHARP < ARK on all three
        // CKKS applications.
        let machines = Machines::build();
        let apps = ckks_apps(&machines);
        for (name, trinity, sharp, ark) in [
            (
                "bootstrap",
                &apps.bootstrap.0,
                &apps.bootstrap.1,
                &apps.ark.0,
            ),
            ("helr", &apps.helr.0, &apps.helr.1, &apps.ark.1),
            ("resnet", &apps.resnet.0, &apps.resnet.1, &apps.ark.2),
        ] {
            assert!(
                trinity.time_ms < sharp.time_ms && sharp.time_ms < ark.time_ms,
                "{name}: trinity {:.2} / sharp {:.2} / ark {:.2}",
                trinity.time_ms,
                sharp.time_ms,
                ark.time_ms
            );
        }
    }

    #[test]
    fn strix_lands_behind_morphling() {
        // Paper Table VII ordering: Strix ~ half of Morphling.
        let machines = Machines::build();
        for (name, s) in TfheShape::paper_sets() {
            let strix = pbs_throughput(&machines.strix, &s, 32);
            let morphling = pbs_throughput(&machines.morphling, &s, 32);
            let ratio = strix / morphling;
            assert!(
                (0.2..0.95).contains(&ratio),
                "{name}: Strix/Morphling {ratio:.2} (paper ~0.5)"
            );
        }
    }

    #[test]
    fn trinity_beats_morphling_on_pbs() {
        let machines = Machines::build();
        for (name, s) in TfheShape::paper_sets() {
            let t = pbs_throughput(&machines.trinity_tfhe, &s, 32);
            let m = pbs_throughput(&machines.morphling, &s, 32);
            let ratio = t / m;
            assert!(
                (2.5..=8.0).contains(&ratio),
                "{name}: Trinity/Morphling {ratio:.2} (paper ~4.2)"
            );
        }
    }

    #[test]
    fn without_cu_is_slower() {
        let machines = Machines::build();
        for (name, s) in TfheShape::paper_sets() {
            let with = pbs_throughput(&machines.trinity_tfhe, &s, 32);
            let without = pbs_throughput(&machines.trinity_no_cu, &s, 32);
            assert!(without < with, "{name}: {without} !< {with}");
        }
    }

    #[test]
    fn conversion_millisecond_scale() {
        let machines = Machines::build();
        let rows = table9(&machines);
        let modeled = rows.last().unwrap();
        // Paper: 0.049 / 0.063 / 0.142 ms. Accept the same order of
        // magnitude with the right monotonicity.
        for (v, paper) in modeled.values.iter().zip([0.049, 0.063, 0.142]) {
            assert!(
                *v > paper / 4.0 && *v < paper * 4.0,
                "repack {v:.3} ms vs paper {paper}"
            );
        }
        assert!(modeled.values[2] > modeled.values[0]);
    }

    #[test]
    fn hybrid_two_chip_penalty() {
        let machines = Machines::build();
        let rows = table10(&machines);
        let sm = rows
            .iter()
            .find(|r| r.name == "SHARP+Morphling" && r.source == Source::Modeled)
            .unwrap();
        let t = rows
            .iter()
            .find(|r| r.name == "Trinity" && r.source == Source::Modeled)
            .unwrap();
        for (a, b) in sm.values.iter().zip(&t.values) {
            let ratio = a / b;
            assert!(
                ratio > 3.0,
                "two-chip penalty only {ratio:.1}x (paper 13.4x)"
            );
        }
    }

    #[test]
    fn cluster_scaling_speedup() {
        let rows = fig15();
        let r8 = &rows[2];
        for v in &r8.values {
            // Dependency chains keep Bootstrap below perfect scaling,
            // as in the paper's own Fig. 15.
            assert!(*v < 0.55, "8-cluster normalized latency {v}");
        }
    }
}
