//! The rule catalogue.
//!
//! Each rule is a pure function over extracted [`FileModel`]s; none of
//! them executes code or needs type information. The configuration
//! lists below (chain roots, lazy markers, strict kernels, clearers)
//! mirror the runtime `debug_assert_domain!` contracts in
//! `fhe-math` — the lint makes the same discipline checkable without
//! running the debug-assertion suites.

use crate::diag::Finding;
use crate::lexer::{TokKind, Token};
use crate::parse::{call_at, calls_in, invokes_macro, FileModel};
use std::collections::{HashMap, HashSet};

/// Every rule the linter knows, in catalogue order. `allow(<rule>)`
/// comments must name one of these.
pub const RULES: &[&str] = &[
    "lazy-domain",
    "lazy-chain-coverage",
    "missing-domain-assert",
    "missing-strict-oracle",
    "untested-lazy-entry",
    "backend-coverage",
    "guard-across-dispatch",
    "lock-unwrap",
    "env-read-outside-selector",
    "kernel-force-outside-test",
    "unsafe-missing-safety",
    "bad-allow",
];

/// The declared lazy-chain entry points: ciphertext-level operations
/// whose internals ride the `[0, 2p)` window end-to-end.
pub const LAZY_CHAIN_ROOTS: &[&str] = &[
    "key_switch",
    "key_switch_galois",
    "mul_no_relin",
    "relinearize",
    "external_product",
    "blind_rotate",
];

/// Kernels that *mark their receiver* lazy: after `x.to_eval_lazy()`,
/// `x` holds `[0, 2p)` residues until something folds them.
const RECEIVER_LAZY_MARKERS: &[&str] = &[
    "to_eval_lazy",
    "to_coeff_lazy",
    "add_assign_lazy",
    "sub_assign_lazy",
    "mul_assign_pointwise_lazy",
    "mul_acc_pointwise_lazy",
];

/// Window-preserving kernels: they neither establish nor fold the
/// `[0, 2p)` window (pure slot permutations), so the receiver's state
/// carries straight through.
const PRESERVERS: &[&str] = &["automorphism_lazy", "permute"];

/// Kernels that *mark their `&mut` argument* lazy (slice-level APIs
/// where the mutated buffer is the first argument).
const ARG_LAZY_MARKERS: &[&str] = &[
    "forward_lazy",
    "inverse_lazy",
    "pointwise_mul_acc_lazy",
    "mul_acc_lazy_batch",
];

/// Strict kernels: debug-panic on a lazy receiver at runtime, so a
/// statically-proven lazy receiver here is a guaranteed debug failure.
const RECEIVER_STRICT_KERNELS: &[&str] = &[
    "add_assign",
    "sub_assign",
    "neg_assign",
    "mul_assign_pointwise",
    "mul_acc_pointwise",
    "mul_scalar_i64",
    "mul_scalar_residues",
    "automorphism",
    "to_centered_f64",
    "to_eval_strict",
    "to_coeff_strict",
];

/// Strict kernels over a `&mut` first argument.
const ARG_STRICT_KERNELS: &[&str] = &["forward_strict", "inverse_strict", "pointwise_mul_acc"];

/// Boundary folds: accept either window and leave the target canonical
/// (or at least re-establish the kernel's documented exit window).
const CLEARERS: &[&str] = &[
    "canonicalize",
    "canonicalize_2p",
    "to_eval",
    "to_coeff",
    "forward",
    "inverse",
    "reduce_2p",
    "fold_2p_to_canonical",
    "fold_4p_to_canonical",
];

/// Methods that hand work to another thread; holding a lock guard
/// across one of these serialises the pool (or deadlocks it).
const DISPATCH_CALLS: &[&str] = &["send", "dispatch", "run"];

/// Functions allowed to `lock()/read()/write()` + unwrap-family:
/// dedicated poison-recovery helpers.
const POISON_HELPERS: &[&str] = &["read_cache", "write_cache"];

/// The one module allowed to read process environment: the kernel
/// backend selector.
const SELECTOR_PATH_SUFFIX: &str = "fhe-math/src/kernel.rs";

fn is_prod(m: &FileModel) -> bool {
    !m.is_test_path() && !m.is_bench_path()
}

/// Runs every rule over the file set and returns raw findings
/// (allow-comment suppression happens in the caller).
pub fn run(files: &[FileModel]) -> Vec<Finding> {
    // Workspace mode: the real tree is being scanned (the backend
    // selector module is present), so cross-file config staleness is
    // checkable. Fixture sets stay quiet on those checks.
    let workspace_mode = files.iter().any(|m| m.path.ends_with(SELECTOR_PATH_SUFFIX));

    let mut out = Vec::new();
    for m in files {
        lazy_domain(m, &mut out);
        missing_domain_assert(m, &mut out);
        missing_strict_oracle(m, &mut out);
        guard_across_dispatch(m, &mut out);
        lock_unwrap(m, &mut out);
        env_read(m, &mut out);
        kernel_force(m, &mut out);
        unsafe_missing_safety(m, &mut out);
    }
    lazy_chain_coverage(files, workspace_mode, &mut out);
    untested_lazy_entry(files, &mut out);
    backend_coverage(files, &mut out);
    out
}

fn finding(
    rule: &'static str,
    m: &FileModel,
    t: &Token,
    message: String,
    help: impl Into<String>,
) -> Finding {
    Finding {
        rule,
        file: m.path.clone(),
        line: t.line,
        col: t.col,
        message,
        help: help.into(),
    }
}

// ---------------------------------------------------------------- lazy-domain

/// Receiver-state machine: within each production fn body, track which
/// locals provably hold `[0, 2p)` residues and flag strict kernels
/// invoked on them. Also flags lazy-chain roots that call a `*_strict`
/// oracle directly (the oracle must stay an independent reference).
fn lazy_domain(m: &FileModel, out: &mut Vec<Finding>) {
    if !is_prod(m) {
        return;
    }
    let toks = m.toks();
    for f in m.fns.iter().filter(|f| !f.in_test_mod) {
        let Some((s, e)) = f.body else { continue };

        // Part 1: chain roots must not reach for the strict oracle.
        if LAZY_CHAIN_ROOTS.contains(&f.name.as_str()) {
            for c in calls_in(toks, s, e) {
                if c.callee.ends_with("_strict") {
                    out.push(finding(
                        "lazy-domain",
                        m,
                        &toks[c.tok],
                        format!(
                            "lazy-chain root `{}` calls the strict oracle `{}` directly",
                            f.name, c.callee
                        ),
                        "the strict oracles are the independent reference the lazy chains \
                         are asserted against; route through the lazy kernels instead",
                    ));
                }
            }
        }

        // Part 2: lazy receivers must not feed strict kernels.
        // Marks are (name, brace depth at marking); a mark dies when
        // its block closes, the local is rebound/reassigned, or it is
        // handed (receiver or `&mut`) to a kernel we do not model.
        let mut marks: Vec<(String, u32, usize)> = Vec::new(); // (name, depth, marker tok)
        let mut depth = 0u32;
        let mut i = s;
        while i <= e {
            match toks[i].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    marks.retain(|mk| mk.1 < depth);
                    depth = depth.saturating_sub(1);
                }
                TokKind::Ident if toks[i].text == "let" => {
                    let mut j = i + 1;
                    if j <= e && toks[j].is_ident("mut") {
                        j += 1;
                    }
                    if j <= e && toks[j].kind == TokKind::Ident {
                        let name = &toks[j].text;
                        marks.retain(|mk| &mk.0 != name);
                    }
                }
                TokKind::Ident => {
                    // Plain reassignment `x = ...` clears x.
                    if i < e
                        && toks[i + 1].is_punct('=')
                        && !(i + 2 <= e && toks[i + 2].is_punct('='))
                        && !(i > 0
                            && matches!(
                                toks[i - 1].kind,
                                TokKind::Punct('=')
                                    | TokKind::Punct('!')
                                    | TokKind::Punct('<')
                                    | TokKind::Punct('>')
                                    | TokKind::Punct(':')
                                    | TokKind::Punct('+')
                                    | TokKind::Punct('-')
                                    | TokKind::Punct('*')
                                    | TokKind::Punct('/')
                            ))
                    {
                        let name = toks[i].text.clone();
                        marks.retain(|mk| mk.0 != name);
                    }
                    if let Some(c) = call_at(toks, i, e) {
                        let callee = c.callee.as_str();
                        let set_mark = |marks: &mut Vec<(String, u32, usize)>, n: &str| {
                            marks.retain(|mk| mk.0 != n);
                            marks.push((n.to_owned(), depth, i));
                        };
                        if PRESERVERS.contains(&callee) {
                            // Window-preserving: state carries through.
                        } else if RECEIVER_LAZY_MARKERS.contains(&callee) {
                            if let Some(r) = c.receiver.as_deref() {
                                set_mark(&mut marks, r);
                            } else if let Some(a) = c.mut_arg.as_deref() {
                                set_mark(&mut marks, a);
                            }
                        } else if ARG_LAZY_MARKERS.contains(&callee) {
                            if let Some(a) = c.mut_arg.as_deref() {
                                set_mark(&mut marks, a);
                            }
                        } else if CLEARERS.contains(&callee) {
                            if let Some(r) = c.receiver.as_deref() {
                                marks.retain(|mk| mk.0 != r);
                            }
                            if let Some(a) = c.mut_arg.as_deref() {
                                marks.retain(|mk| mk.0 != a);
                            }
                        } else if RECEIVER_STRICT_KERNELS.contains(&callee)
                            || ARG_STRICT_KERNELS.contains(&callee)
                        {
                            let target = if RECEIVER_STRICT_KERNELS.contains(&callee) {
                                c.receiver.as_deref()
                            } else {
                                c.mut_arg.as_deref()
                            };
                            if let Some(t) = target {
                                if let Some(pos) = marks.iter().position(|mk| mk.0 == t) {
                                    let marker = marks[pos].2;
                                    out.push(finding(
                                        "lazy-domain",
                                        m,
                                        &toks[i],
                                        format!(
                                            "strict kernel `{}` called on `{}`, which is in the \
                                             lazy [0, 2p) window since `{}` on line {}",
                                            callee, t, toks[marker].text, toks[marker].line
                                        ),
                                        format!(
                                            "fold first (`{}.canonicalize()` or the kernel's \
                                             `*_lazy` variant), or keep the whole chain lazy",
                                            t
                                        ),
                                    ));
                                    marks.remove(pos);
                                }
                            }
                        } else {
                            // Unknown kernel: it may fold or consume the
                            // value — drop marks rather than guess.
                            if let Some(r) = c.receiver.as_deref() {
                                marks.retain(|mk| mk.0 != r);
                            }
                            if let Some(a) = c.mut_arg.as_deref() {
                                marks.retain(|mk| mk.0 != a);
                            }
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
}

// ------------------------------------------------------- lazy-chain-coverage

/// Every declared chain root must (a) exist and (b) transitively reach
/// a `*_lazy` marker kernel through the name-based call graph — a root
/// that never goes lazy means the chain config is stale or the lazy
/// path silently fell out of the pipeline.
fn lazy_chain_coverage(files: &[FileModel], workspace_mode: bool, out: &mut Vec<Finding>) {
    // Name -> callee-name edges, production fns only.
    let mut edges: HashMap<&str, HashSet<String>> = HashMap::new();
    for m in files.iter().filter(|m| is_prod(m)) {
        for f in m.fns.iter().filter(|f| !f.in_test_mod) {
            let Some((s, e)) = f.body else { continue };
            let set = edges.entry(f.name.as_str()).or_default();
            for c in calls_in(m.toks(), s, e) {
                set.insert(c.callee);
            }
        }
    }
    let is_marker = |n: &str| RECEIVER_LAZY_MARKERS.contains(&n) || ARG_LAZY_MARKERS.contains(&n);

    for root in LAZY_CHAIN_ROOTS {
        let def = files.iter().filter(|m| is_prod(m)).find_map(|m| {
            m.fns
                .iter()
                .find(|f| !f.in_test_mod && f.name == *root && f.body.is_some())
                .map(|f| (m, f))
        });
        let Some((m, f)) = def else {
            if workspace_mode {
                out.push(Finding {
                    rule: "lazy-chain-coverage",
                    file: "<workspace>".into(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "declared lazy-chain root `{root}` is not defined anywhere in the tree"
                    ),
                    help: "update LAZY_CHAIN_ROOTS in crates/lint/src/rules.rs to match the \
                           current ciphertext-level entry points"
                        .into(),
                });
            }
            continue;
        };
        // BFS over callee names, depth-capped: deep enough for
        // blind_rotate -> cmux -> external_product -> forward_lazy and
        // future chains, shallow enough to stay cheap.
        let mut frontier: Vec<&str> = vec![root];
        let mut seen: HashSet<&str> = frontier.iter().copied().collect();
        let mut reached = false;
        for _ in 0..8 {
            let mut next = Vec::new();
            for name in frontier.drain(..) {
                if let Some(callees) = edges.get(name) {
                    for c in callees {
                        if is_marker(c) {
                            reached = true;
                        }
                        if let Some((k, _)) = edges.get_key_value(c.as_str()) {
                            if seen.insert(k) {
                                next.push(*k);
                            }
                        }
                    }
                }
            }
            if reached || next.is_empty() {
                break;
            }
            frontier = next;
        }
        if !reached {
            out.push(Finding {
                rule: "lazy-chain-coverage",
                file: m.path.clone(),
                line: f.line,
                col: f.col,
                message: format!(
                    "lazy-chain root `{root}` never reaches a `*_lazy` kernel \
                     (searched the call graph 8 levels deep)"
                ),
                help: "either the chain lost its lazy path (a regression) or the root no \
                       longer belongs in LAZY_CHAIN_ROOTS"
                    .into(),
            });
        }
    }
}

// ------------------------------------------------------ missing-domain-assert

/// Every public `*_lazy` kernel entry must invoke the shared
/// `debug_assert_domain!` macro so the runtime contract matches the
/// documented window.
fn missing_domain_assert(m: &FileModel, out: &mut Vec<Finding>) {
    if !is_prod(m) {
        return;
    }
    for f in m
        .fns
        .iter()
        .filter(|f| f.is_pub && !f.in_test_mod && f.in_trait.is_none() && f.name.ends_with("_lazy"))
    {
        let Some((s, e)) = f.body else { continue };
        if !invokes_macro(m.toks(), s, e, "debug_assert_domain") {
            out.push(Finding {
                rule: "missing-domain-assert",
                file: m.path.clone(),
                line: f.line,
                col: f.col,
                message: format!(
                    "public lazy kernel `{}` does not invoke `debug_assert_domain!`",
                    f.name
                ),
                help: "assert the documented input window (see fhe-math/src/domain.rs), or \
                       add `// trinity-lint: allow(missing-domain-assert): <why>` if the \
                       kernel is genuinely window-agnostic"
                    .into(),
            });
        }
    }
}

// ------------------------------------------------------ missing-strict-oracle

/// Every public `X_lazy` must have a strict counterpart (`X` or
/// `X_strict`) in the same file — the oracle the identity suites pin
/// it against.
fn missing_strict_oracle(m: &FileModel, out: &mut Vec<Finding>) {
    if !is_prod(m) {
        return;
    }
    let names: HashSet<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
    for f in m
        .fns
        .iter()
        .filter(|f| f.is_pub && !f.in_test_mod && f.in_trait.is_none() && f.name.ends_with("_lazy"))
    {
        let base = &f.name[..f.name.len() - "_lazy".len()];
        if !names.contains(base) && !names.contains(format!("{base}_strict").as_str()) {
            out.push(Finding {
                rule: "missing-strict-oracle",
                file: m.path.clone(),
                line: f.line,
                col: f.col,
                message: format!(
                    "public lazy kernel `{}` has no strict counterpart `{base}` or \
                     `{base}_strict` in this file",
                    f.name
                ),
                help: "every lazy kernel needs a canonical reference implementation the \
                       backend-identity suites can assert bit-equality against"
                    .into(),
            });
        }
    }
}

// -------------------------------------------------------- untested-lazy-entry

/// Every public `*_lazy` kernel must be referenced from the test
/// corpus: integration tests under any `tests/` directory, or a
/// `#[cfg(test)]` module.
fn untested_lazy_entry(files: &[FileModel], out: &mut Vec<Finding>) {
    let mut corpus: HashSet<&str> = HashSet::new();
    for m in files {
        if m.is_test_path() {
            corpus.extend(
                m.toks()
                    .iter()
                    .filter_map(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str())),
            );
        } else {
            for &(s, e) in &m.test_mod_spans {
                corpus.extend(
                    m.toks()[s..=e]
                        .iter()
                        .filter_map(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str())),
                );
            }
        }
    }
    for m in files.iter().filter(|m| is_prod(m)) {
        for f in m.fns.iter().filter(|f| {
            f.is_pub && !f.in_test_mod && f.in_trait.is_none() && f.name.ends_with("_lazy")
        }) {
            if !corpus.contains(f.name.as_str()) {
                out.push(Finding {
                    rule: "untested-lazy-entry",
                    file: m.path.clone(),
                    line: f.line,
                    col: f.col,
                    message: format!(
                        "public lazy kernel `{}` is never referenced from any test",
                        f.name
                    ),
                    help: "cover it in the lazy-chain / backend-identity suites (tests/) or \
                           the defining module's #[cfg(test)] sweep"
                        .into(),
                });
            }
        }
    }
}

// ----------------------------------------------------------- backend-coverage

/// Every `KernelBackend` trait method (including the `*_batch`
/// defaults) must appear in the test corpus — one backend silently
/// dropping out of the unit sweep / identity suites is exactly how a
/// divergent kernel ships.
fn backend_coverage(files: &[FileModel], out: &mut Vec<Finding>) {
    let Some(kernel) = files
        .iter()
        .find(|m| m.path.ends_with(SELECTOR_PATH_SUFFIX))
    else {
        return;
    };
    // Corpus: kernel.rs's own #[cfg(test)] sweep plus tests/ files.
    let mut corpus: HashSet<&str> = HashSet::new();
    for &(s, e) in &kernel.test_mod_spans {
        corpus.extend(
            kernel.toks()[s..=e]
                .iter()
                .filter_map(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str())),
        );
    }
    for m in files.iter().filter(|m| m.is_test_path()) {
        corpus.extend(
            m.toks()
                .iter()
                .filter_map(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str())),
        );
    }
    let mut seen: HashSet<&str> = HashSet::new();
    for f in kernel
        .fns
        .iter()
        .filter(|f| f.in_trait.as_deref() == Some("KernelBackend"))
    {
        if !seen.insert(f.name.as_str()) {
            continue;
        }
        if !corpus.contains(f.name.as_str()) {
            out.push(Finding {
                rule: "backend-coverage",
                file: kernel.path.clone(),
                line: f.line,
                col: f.col,
                message: format!(
                    "KernelBackend method `{}` is not exercised by the kernel unit sweep or \
                     the identity suites",
                    f.name
                ),
                help: "add it to the per-backend sweep in kernel.rs's test module or the \
                       tests/ identity suites"
                    .into(),
            });
        }
    }
}

// ------------------------------------------------------ guard-across-dispatch

/// A `Mutex`/`RwLock` guard bound by `let` must not stay live across a
/// dispatch call (`.send(..)` / `.run(..)` / `.dispatch(..)`): workers
/// that need the same lock deadlock, and everyone else serialises.
fn guard_across_dispatch(m: &FileModel, out: &mut Vec<Finding>) {
    if !is_prod(m) {
        return;
    }
    let toks = m.toks();
    for f in m.fns.iter().filter(|f| !f.in_test_mod) {
        let Some((s, e)) = f.body else { continue };
        // Findings are reported at the `let` so an allow comment above
        // the guard binding covers them.
        let mut reported: HashSet<usize> = HashSet::new();
        let mut i = s;
        let mut depth = 0u32;
        let mut live: Vec<(String, u32, usize)> = Vec::new();
        while i <= e {
            match toks[i].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    live.retain(|g| g.1 < depth);
                    depth = depth.saturating_sub(1);
                }
                TokKind::Ident if toks[i].text == "let" => {
                    let mut j = i + 1;
                    if j <= e && toks[j].is_ident("mut") {
                        j += 1;
                    }
                    if j < e && toks[j].kind == TokKind::Ident && toks[j + 1].is_punct('=') {
                        // Scan the initialiser for `.lock()` / `.read()` /
                        // `.write()` at the *same brace depth* as the
                        // `let` (a guard taken inside a nested block,
                        // `let job = { let g = q.lock()...; g.recv() }`,
                        // dies with that block, not with `job`).
                        let mut bd = 0i32;
                        let mut k = j + 2;
                        while k <= e {
                            match toks[k].kind {
                                TokKind::Punct('{') => bd += 1,
                                TokKind::Punct('}') => bd -= 1,
                                TokKind::Punct(';') if bd == 0 => break,
                                TokKind::Ident if bd == 0 => {
                                    let name = toks[k].text.as_str();
                                    if (name == "lock" || name == "read" || name == "write")
                                        && k >= 1
                                        && toks[k - 1].is_punct('.')
                                        && k + 2 <= e
                                        && toks[k + 1].is_punct('(')
                                        && toks[k + 2].is_punct(')')
                                    {
                                        live.push((toks[j].text.clone(), depth, i));
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                }
                TokKind::Ident
                    if toks[i].text == "drop"
                        && i + 2 <= e
                        && toks[i + 1].is_punct('(')
                        && toks[i + 2].kind == TokKind::Ident =>
                {
                    let name = toks[i + 2].text.clone();
                    live.retain(|g| g.0 != name);
                }
                TokKind::Ident
                    if DISPATCH_CALLS.contains(&toks[i].text.as_str())
                        && i > 0
                        && toks[i - 1].is_punct('.')
                        && i < e
                        && toks[i + 1].is_punct('(') =>
                {
                    for &(ref name, _, let_tok) in &live {
                        if reported.insert(let_tok) {
                            out.push(Finding {
                                rule: "guard-across-dispatch",
                                file: m.path.clone(),
                                line: toks[let_tok].line,
                                col: toks[let_tok].col,
                                message: format!(
                                    "lock guard `{}` is live across `.{}(..)` on line {}",
                                    name, toks[i].text, toks[i].line
                                ),
                                help: "scope the guard to a block that closes before the \
                                       dispatch, or `drop(guard)` first"
                                    .into(),
                            });
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------- lock-unwrap

/// `.lock().unwrap()` (and `.read()/.write().unwrap()/.expect(..)`)
/// turns a poisoned-but-consistent lock into a panic cascade; the
/// codebase standard is `unwrap_or_else(PoisonError::into_inner)`,
/// centralised in the poison-recovery helpers.
fn lock_unwrap(m: &FileModel, out: &mut Vec<Finding>) {
    if !is_prod(m) {
        return;
    }
    let toks = m.toks();
    for i in 0..toks.len().saturating_sub(6) {
        if m.in_test_span(i) {
            continue;
        }
        let name = match toks[i].kind {
            TokKind::Ident => toks[i].text.as_str(),
            _ => continue,
        };
        if !(name == "lock" || name == "read" || name == "write") {
            continue;
        }
        let shape = i >= 1
            && toks[i - 1].is_punct('.')
            && toks[i + 1].is_punct('(')
            && toks[i + 2].is_punct(')')
            && toks[i + 3].is_punct('.')
            && toks[i + 4].kind == TokKind::Ident
            && (toks[i + 4].text == "unwrap" || toks[i + 4].text == "expect")
            && toks[i + 5].is_punct('(');
        if !shape {
            continue;
        }
        if m.enclosing_fn(i)
            .is_some_and(|f| POISON_HELPERS.contains(&f.name.as_str()))
        {
            continue;
        }
        out.push(finding(
            "lock-unwrap",
            m,
            &toks[i + 4],
            format!(
                "`.{}().{}(..)` panics on a poisoned lock",
                name,
                toks[i + 4].text
            ),
            "use `unwrap_or_else(PoisonError::into_inner)` (the lock data here is \
             always structurally consistent) or route through the poison-recovery \
             helpers",
        ));
    }
}

// --------------------------------------------------- env-read-outside-selector

/// `std::env::var` reads belong in exactly one place — the kernel
/// backend selector — so configuration stays auditable and tests stay
/// hermetic.
fn env_read(m: &FileModel, out: &mut Vec<Finding>) {
    if !is_prod(m) || m.path.ends_with(SELECTOR_PATH_SUFFIX) {
        return;
    }
    let toks = m.toks();
    for i in 0..toks.len().saturating_sub(4) {
        if m.in_test_span(i) {
            continue;
        }
        if toks[i].is_ident("env")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokKind::Ident
            && (toks[i + 3].text == "var" || toks[i + 3].text == "var_os")
            && toks[i + 4].is_punct('(')
        {
            out.push(finding(
                "env-read-outside-selector",
                m,
                &toks[i],
                "process-environment read outside the backend selector module".into(),
                "thread configuration through explicit parameters; only \
                 fhe-math/src/kernel.rs may consult the environment \
                 (TRINITY_KERNEL_BACKEND)",
            ));
        }
    }
}

// --------------------------------------------------- kernel-force-outside-test

/// `kernel::force` swaps the process-global backend and is a test /
/// bench affordance only. Production code — the service layer above
/// all — must rely on `kernel::active`'s one-time resolution: a force
/// under live multi-tenant traffic races every in-flight dispatch.
fn kernel_force(m: &FileModel, out: &mut Vec<Finding>) {
    if !is_prod(m) || m.path.ends_with(SELECTOR_PATH_SUFFIX) {
        return;
    }
    let toks = m.toks();
    for i in 0..toks.len().saturating_sub(3) {
        if m.in_test_span(i) {
            continue;
        }
        if toks[i].is_ident("kernel")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("force")
        {
            out.push(finding(
                "kernel-force-outside-test",
                m,
                &toks[i + 3],
                "`kernel::force` referenced in production code".into(),
                "the global backend swap is test/bench-only; production (and the \
                 service layer in particular) must use `kernel::active()`'s \
                 one-time resolution",
            ));
        }
    }
}

// -------------------------------------------------------- unsafe-missing-safety

/// Every `unsafe { .. }` block needs an adjacent `// SAFETY:` comment
/// stating the invariant that makes it sound.
fn unsafe_missing_safety(m: &FileModel, out: &mut Vec<Finding>) {
    let toks = m.toks();
    for i in 0..toks.len().saturating_sub(1) {
        if !(toks[i].is_ident("unsafe") && toks[i + 1].is_punct('{')) {
            continue;
        }
        let line = toks[i].line;
        let documented =
            m.lexed.comments.iter().any(|c| {
                c.text.contains("SAFETY") && c.line_end <= line && c.line_end + 15 >= line
            });
        if !documented {
            out.push(finding(
                "unsafe-missing-safety",
                m,
                &toks[i],
                "`unsafe` block without a `// SAFETY:` comment".into(),
                "state the invariant that makes this sound in a `// SAFETY:` comment \
                 directly above the block",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::build_model;

    fn lint_one(path: &str, src: &str) -> Vec<Finding> {
        run(&[build_model(path, src)])
    }

    #[test]
    fn strict_on_lazy_receiver_fires_and_block_scoping_clears() {
        let f = lint_one(
            "crates/x/src/a.rs",
            "fn f(a: &mut RnsPoly, b: &RnsPoly) {\n\
                 a.to_eval_lazy();\n\
                 a.add_assign(b);\n\
             }\n\
             fn g(a: &mut RnsPoly, b: &RnsPoly) {\n\
                 { a.to_eval_lazy(); a.canonicalize(); }\n\
                 a.add_assign(b);\n\
             }\n",
        );
        let lazy: Vec<_> = f.iter().filter(|x| x.rule == "lazy-domain").collect();
        assert_eq!(lazy.len(), 1, "{f:?}");
        assert_eq!(lazy[0].line, 3);
    }

    #[test]
    fn chain_root_calling_strict_oracle_fires() {
        let f = lint_one(
            "crates/x/src/a.rs",
            "pub fn relinearize(ct: &C) { let x = key_switch_strict(ct); use_it(x); }\n",
        );
        assert!(f
            .iter()
            .any(|x| x.rule == "lazy-domain" && x.message.contains("key_switch_strict")));
    }

    #[test]
    fn guard_scoped_to_inner_block_is_clean() {
        let f = lint_one(
            "crates/x/src/a.rs",
            "fn w(q: &Q, done: &D) {\n\
                 let job = { let g = q.lock().unwrap_or_else(e); g.recv() };\n\
                 let _ = done.send(job);\n\
             }\n",
        );
        assert!(
            !f.iter().any(|x| x.rule == "guard-across-dispatch"),
            "{f:?}"
        );
    }

    #[test]
    fn guard_live_across_send_fires_at_the_let() {
        let f = lint_one(
            "crates/x/src/a.rs",
            "fn r(&self) {\n\
                 let inject = self.inject.lock().unwrap_or_else(e);\n\
                 inject.send(1);\n\
             }\n",
        );
        let g: Vec<_> = f
            .iter()
            .filter(|x| x.rule == "guard-across-dispatch")
            .collect();
        assert_eq!(g.len(), 1, "{f:?}");
        assert_eq!(g[0].line, 2, "reported at the let, not the send");
    }
}
