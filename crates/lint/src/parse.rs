//! Item and call extraction over the token stream.
//!
//! This is deliberately not a full parser: the rules need function
//! items (name, visibility, body extent, whether they live in a
//! `#[cfg(test)]` module or a trait), call-graph edges by callee name,
//! and a few token-pattern scans. All of that falls out of a single
//! walk over the [`lexer`] token stream with a brace
//! matcher — no AST, no type information.

use crate::lexer::{self, Lexed, TokKind, Token};

/// One extracted `fn` item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Whether declared with any `pub` visibility.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Token indices of the body `{` and its matching `}` (None for
    /// bodiless trait-method declarations).
    pub body: Option<(usize, usize)>,
    /// Whether the fn sits inside a `#[cfg(test)]` / `mod tests` region.
    pub in_test_mod: bool,
    /// Name of the enclosing trait declaration, if any.
    pub in_trait: Option<String>,
}

/// A parsed source file with its extracted facts.
#[derive(Debug)]
pub struct FileModel {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Raw source lines (for allow-comment attachment and rendering).
    pub lines: Vec<String>,
    /// Token stream and comment side channel.
    pub lexed: Lexed,
    /// For each token index, the index of the matching brace (both
    /// directions), or `usize::MAX`.
    pub brace_match: Vec<usize>,
    /// Extracted functions in source order.
    pub fns: Vec<FnInfo>,
    /// Token ranges (inclusive braces) of `#[cfg(test)]` mod bodies.
    pub test_mod_spans: Vec<(usize, usize)>,
}

impl FileModel {
    /// Tokens of this file.
    pub fn toks(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// Whether the whole file belongs to the test corpus (lives under
    /// a `tests/` directory).
    pub fn is_test_path(&self) -> bool {
        self.path.starts_with("tests/") || self.path.contains("/tests/")
    }

    /// Whether the file is a benchmark target.
    pub fn is_bench_path(&self) -> bool {
        self.path.contains("/benches/")
    }

    /// Whether token index `i` falls inside a test-mod span.
    pub fn in_test_span(&self, i: usize) -> bool {
        self.test_mod_spans.iter().any(|&(s, e)| i >= s && i <= e)
    }

    /// The innermost fn whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| i >= s && i <= e))
            .min_by_key(|f| {
                let (s, e) = f.body.unwrap();
                e - s
            })
    }
}

/// Lexes and extracts one file.
pub fn build_model(path: &str, src: &str) -> FileModel {
    let lexed = lexer::lex(src);
    let brace_match = match_braces(&lexed.tokens);
    let (fns, test_mod_spans) = extract_items(&lexed.tokens, &brace_match);
    FileModel {
        path: path.replace('\\', "/"),
        lines: src.lines().map(str::to_owned).collect(),
        lexed,
        brace_match,
        fns,
        test_mod_spans,
    }
}

/// Pairs `{`/`}` token indices. Unbalanced braces (which would mean a
/// lexer bug or truncated file) map to `usize::MAX`.
fn match_braces(toks: &[Token]) -> Vec<usize> {
    let mut out = vec![usize::MAX; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Punct('{') => stack.push(i),
            TokKind::Punct('}') => {
                if let Some(open) = stack.pop() {
                    out[open] = i;
                    out[i] = open;
                }
            }
            _ => {}
        }
    }
    out
}

/// Whether the tokens just before index `i` carry a `#[cfg(test)]`
/// attribute (scans a small backwards window).
fn has_cfg_test_attr(toks: &[Token], i: usize) -> bool {
    let lo = i.saturating_sub(8);
    let w = &toks[lo..i];
    w.windows(2)
        .any(|p| p[0].is_ident("cfg") && p[1].is_punct('('))
        && w.iter().any(|t| t.is_ident("test"))
}

/// Whether the fn keyword at `i` is preceded by a `pub` (including
/// `pub(crate)` / `pub(super)` forms).
fn is_pub_fn(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    // Walk back over qualifiers: unsafe / const / async / extern "C".
    while j > 0 {
        let t = &toks[j - 1];
        let qualifier = t.is_ident("unsafe")
            || t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("extern")
            || t.kind == TokKind::Str;
        if qualifier {
            j -= 1;
        } else {
            break;
        }
    }
    if j > 0 && toks[j - 1].is_ident("pub") {
        return true;
    }
    // pub(crate) fn: ... pub ( crate ) fn
    if j >= 4
        && toks[j - 1].is_punct(')')
        && toks[j - 4].is_ident("pub")
        && toks[j - 3].is_punct('(')
    {
        return true;
    }
    false
}

/// Scans from just after the fn name for the body `{` (at zero
/// paren/bracket depth) or a `;` ending a bodiless declaration.
fn find_body_open(toks: &[Token], mut i: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') if paren == 0 && bracket == 0 => return Some(i),
            TokKind::Punct(';') if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

struct Scope {
    close: usize,
    is_test: bool,
    trait_name: Option<String>,
}

fn extract_items(toks: &[Token], braces: &[usize]) -> (Vec<FnInfo>, Vec<(usize, usize)>) {
    let mut fns = Vec::new();
    let mut test_spans = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        while scopes.last().is_some_and(|s| i > s.close) {
            scopes.pop();
        }
        let t = &toks[i];

        if t.is_ident("mod") && i + 2 < toks.len() {
            if let (TokKind::Ident, TokKind::Punct('{')) = (toks[i + 1].kind, toks[i + 2].kind) {
                let close = braces[i + 2];
                if close != usize::MAX {
                    let is_test = toks[i + 1].text == "tests" || has_cfg_test_attr(toks, i);
                    if is_test {
                        test_spans.push((i + 2, close));
                    }
                    scopes.push(Scope {
                        close,
                        is_test: is_test || scopes.iter().any(|s| s.is_test),
                        trait_name: None,
                    });
                }
                i += 3;
                continue;
            }
        }

        if t.is_ident("trait") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            if let Some(open) = find_body_open(toks, i + 2) {
                let close = braces[open];
                if close != usize::MAX {
                    scopes.push(Scope {
                        close,
                        is_test: scopes.iter().any(|s| s.is_test),
                        trait_name: Some(toks[i + 1].text.clone()),
                    });
                }
                i = open + 1;
                continue;
            }
        }

        if t.is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let body = find_body_open(toks, i + 2)
                .and_then(|open| (braces[open] != usize::MAX).then(|| (open, braces[open])));
            fns.push(FnInfo {
                name,
                is_pub: is_pub_fn(toks, i),
                line: t.line,
                col: t.col,
                body,
                in_test_mod: scopes.iter().any(|s| s.is_test),
                in_trait: scopes.iter().rev().find_map(|s| s.trait_name.clone()),
            });
            // Skip the signature but walk *into* the body so nested
            // items (closures aside, rare helper fns) are still seen.
            i = match body {
                Some((open, _)) => open + 1,
                None => i + 2,
            };
            continue;
        }

        i += 1;
    }

    (fns, test_spans)
}

/// A call site found inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (method name or last path segment of a free call).
    pub callee: String,
    /// Simple receiver identifier for `recv.callee(...)` when the
    /// receiver is a plain local (not a field chain or call result).
    pub receiver: Option<String>,
    /// First argument when it is exactly `&mut IDENT` (tracks the
    /// slice-style kernel APIs where the mutated buffer is an arg).
    pub mut_arg: Option<String>,
    /// Whether this is a method call (`.callee(`).
    pub is_method: bool,
    /// Token index of the callee identifier.
    pub tok: usize,
}

/// The call site whose callee identifier sits at token index `i`, if
/// the pattern there is a call (`ident (` / `. ident (`, excluding
/// `fn ident (` declarations and `ident!(` macro invocations).
pub fn call_at(toks: &[Token], i: usize, end: usize) -> Option<CallSite> {
    if toks[i].kind != TokKind::Ident || i + 1 > end || !toks[i + 1].is_punct('(') {
        return None;
    }
    if i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct('!')) {
        return None;
    }
    let is_method = i > 0 && toks[i - 1].is_punct('.');
    let receiver = if is_method && i >= 2 && toks[i - 2].kind == TokKind::Ident {
        // Only a plain local (or self): reject field chains a.b.c().
        let plain = i < 3 || !toks[i - 3].is_punct('.');
        plain.then(|| toks[i - 2].text.clone())
    } else {
        None
    };
    let mut_arg = (i + 4 <= end
        && toks[i + 2].is_punct('&')
        && toks[i + 3].is_ident("mut")
        && toks[i + 4].kind == TokKind::Ident)
        .then(|| toks[i + 4].text.clone());
    Some(CallSite {
        callee: toks[i].text.clone(),
        receiver,
        mut_arg,
        is_method,
        tok: i,
    })
}

/// Extracts all call sites in `toks[range]` (token-pattern based:
/// `ident (` and `. ident (`).
pub fn calls_in(toks: &[Token], start: usize, end: usize) -> Vec<CallSite> {
    (start..=end.min(toks.len().saturating_sub(1)))
        .filter_map(|i| call_at(toks, i, end))
        .collect()
}

/// Whether `toks[range]` contains an invocation of macro `name`
/// (`name!`).
pub fn invokes_macro(toks: &[Token], start: usize, end: usize, name: &str) -> bool {
    (start..end.min(toks.len().saturating_sub(1)))
        .any(|i| toks[i].is_ident(name) && toks[i + 1].is_punct('!'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_fns_with_visibility_and_bodies() {
        let m = build_model(
            "crates/x/src/a.rs",
            "pub fn outer<T: Into<Vec<u8>>>(x: T) -> u64 { inner(); 0 }\n\
             fn inner() {}\n\
             pub(crate) fn scoped() {}\n\
             trait Tr { fn decl(&self); fn dflt(&self) {} }\n",
        );
        let names: Vec<_> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "scoped", "decl", "dflt"]);
        assert!(m.fns[0].is_pub && m.fns[0].body.is_some());
        assert!(!m.fns[1].is_pub);
        assert!(m.fns[2].is_pub, "pub(crate) counts as pub");
        let decl = &m.fns[3];
        assert_eq!(decl.in_trait.as_deref(), Some("Tr"));
        assert!(decl.body.is_none(), "trait decl has no body");
        assert!(m.fns[4].body.is_some(), "default method has a body");
    }

    #[test]
    fn test_mod_detection() {
        let m = build_model(
            "crates/x/src/a.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { prod(); }\n}\n",
        );
        assert!(!m.fns[0].in_test_mod);
        assert!(m.fns[1].in_test_mod);
        assert_eq!(m.test_mod_spans.len(), 1);
    }

    #[test]
    fn call_sites_receivers_and_mut_args() {
        let m = build_model(
            "crates/x/src/a.rs",
            "fn f() { acc.to_eval_lazy(); t.forward_lazy(&mut d); self.pool.run(v); free(1); }\n",
        );
        let (s, e) = m.fns[0].body.unwrap();
        let calls = calls_in(m.toks(), s, e);
        let by_name: Vec<_> = calls
            .iter()
            .map(|c| {
                (
                    c.callee.as_str(),
                    c.receiver.as_deref(),
                    c.mut_arg.as_deref(),
                )
            })
            .collect();
        assert!(by_name.contains(&(("to_eval_lazy"), Some("acc"), None)));
        assert!(by_name.contains(&(("forward_lazy"), Some("t"), Some("d"))));
        // `self.pool.run` is a field chain: no simple receiver.
        assert!(by_name.contains(&(("run"), None, None)));
        assert!(by_name.contains(&(("free"), None, None)));
    }
}
