//! A hand-rolled Rust lexer.
//!
//! The build is offline, so `trinity-lint` cannot lean on `syn` or
//! `proc-macro2`; this module tokenizes Rust source directly. It gets
//! the hard cases right for analysis purposes:
//!
//! * strings (plain, raw `r#"..."#` with any hash count, byte, raw
//!   byte) and their escapes,
//! * char literals vs lifetimes (`'a'` vs `'a`, `'\u{1F600}'`, `'_`),
//! * nested block comments (`/* /* */ */`) and line comments
//!   (comments are kept on a side channel — the allow-comment and
//!   `// SAFETY:` rules need them),
//! * raw identifiers (`r#fn`),
//! * numeric literals including type suffixes and float dots
//!   (`1_000u64`, `2.5e-3`) without eating range operators (`0..n`).
//!
//! Multi-character operators are emitted as consecutive single-char
//! [`TokKind::Punct`] tokens (`::` is two `:`); the extraction layer
//! pattern-matches sequences, which keeps the lexer trivial. Nested
//! generics therefore need no special casing here — `<` and `>` are
//! ordinary puncts and never confused with string or char state.

/// The kind of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (text carried on the token).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// String literal of any flavour (text not retained).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal.
    Num,
    /// A single punctuation character.
    Punct(char),
}

/// One lexed token with its source position (1-based line/column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Identifier text (empty for non-identifier tokens).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punct `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment captured on the side channel (line or block, with doc
/// comments included — `///` and `//!` are comments to the lexer).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the leading `//` / `/*` sigils.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line_start: u32,
    /// 1-based line the comment ends on.
    pub line_end: u32,
}

/// The output of [`lex`]: code tokens plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.b.get(self.i + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.b[self.i];
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn done(&self) -> bool {
        self.i >= self.b.len()
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Tokenizes `src`, returning tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while !cur.done() {
        let c = cur.peek(0);
        let (line, col) = (cur.line, cur.col);

        if c.is_ascii_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == b'/' && cur.peek(1) == b'/' {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            while !cur.done() && cur.peek(0) != b'\n' {
                text.push(cur.bump() as char);
            }
            out.comments.push(Comment {
                text,
                line_start: line,
                line_end: line,
            });
            continue;
        }
        if c == b'/' && cur.peek(1) == b'*' {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            let mut text = String::new();
            while !cur.done() && depth > 0 {
                if cur.peek(0) == b'/' && cur.peek(1) == b'*' {
                    depth += 1;
                    cur.bump();
                    cur.bump();
                } else if cur.peek(0) == b'*' && cur.peek(1) == b'/' {
                    depth -= 1;
                    cur.bump();
                    cur.bump();
                } else {
                    text.push(cur.bump() as char);
                }
            }
            out.comments.push(Comment {
                text,
                line_start: line,
                line_end: cur.line,
            });
            continue;
        }

        // Strings (plain / byte / raw / raw-byte) and raw identifiers.
        if c == b'"' {
            lex_plain_string(&mut cur);
            out.tokens.push(tok(TokKind::Str, line, col));
            continue;
        }
        if (c == b'r' || c == b'b') && maybe_string_prefix(&cur) {
            lex_prefixed_string(&mut cur);
            out.tokens.push(tok(TokKind::Str, line, col));
            continue;
        }
        if c == b'r' && cur.peek(1) == b'#' && is_ident_start(cur.peek(2)) {
            // Raw identifier r#type — strip the sigil, keep the name.
            cur.bump();
            cur.bump();
            let text = lex_ident_text(&mut cur);
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        if c == b'b' && cur.peek(1) == b'\'' {
            cur.bump(); // 'b', then fall through to char handling below.
            lex_char(&mut cur);
            out.tokens.push(tok(TokKind::Char, line, col));
            continue;
        }

        // Lifetime vs char literal.
        if c == b'\'' {
            if is_ident_start(cur.peek(1)) && cur.peek(2) != b'\'' {
                cur.bump();
                let text = lex_ident_text(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                });
            } else {
                lex_char(&mut cur);
                out.tokens.push(tok(TokKind::Char, line, col));
            }
            continue;
        }

        if c.is_ascii_digit() {
            lex_number(&mut cur);
            out.tokens.push(tok(TokKind::Num, line, col));
            continue;
        }

        if is_ident_start(c) {
            let text = lex_ident_text(&mut cur);
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }

        cur.bump();
        out.tokens.push(tok(TokKind::Punct(c as char), line, col));
    }

    out
}

fn tok(kind: TokKind, line: u32, col: u32) -> Token {
    Token {
        kind,
        text: String::new(),
        line,
        col,
    }
}

fn lex_ident_text(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while !cur.done() && is_ident_cont(cur.peek(0)) {
        s.push(cur.bump() as char);
    }
    s
}

/// Consumes a `"..."` string body including the quotes; backslash
/// escapes the next byte (sufficient for `\"` and `\\`).
fn lex_plain_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while !cur.done() {
        let c = cur.bump();
        if c == b'\\' && !cur.done() {
            cur.bump();
        } else if c == b'"' {
            break;
        }
    }
}

/// Whether the cursor (on `r` or `b`) starts a string literal rather
/// than an identifier: `r"`, `r#…#"`, `b"`, `br"`, `br#…#"`.
fn maybe_string_prefix(cur: &Cursor) -> bool {
    let mut j = 1usize;
    if cur.peek(0) == b'b' && cur.peek(1) == b'r' {
        j = 2;
    }
    let raw = cur.peek(j - 1) == b'r';
    if raw {
        while cur.peek(j) == b'#' {
            j += 1;
        }
    }
    cur.peek(j) == b'"'
}

/// Consumes a prefixed string: `b"…"` (escapes) or `r#"…"#` / `br"…"`
/// (no escapes, hash-delimited).
fn lex_prefixed_string(cur: &mut Cursor) {
    let mut raw = false;
    if cur.peek(0) == b'b' {
        cur.bump();
    }
    if cur.peek(0) == b'r' {
        raw = true;
        cur.bump();
    }
    if !raw {
        lex_plain_string(cur);
        return;
    }
    let mut hashes = 0usize;
    while cur.peek(0) == b'#' {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    'scan: while !cur.done() {
        if cur.bump() == b'"' {
            for k in 0..hashes {
                if cur.peek(k) != b'#' {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
}

/// Consumes a char literal `'x'`, `'\n'`, `'\u{…}'` including quotes.
fn lex_char(cur: &mut Cursor) {
    cur.bump(); // opening quote
    if cur.peek(0) == b'\\' {
        cur.bump();
        cur.bump(); // the escaped char (or 'u' of \u{…})
        if cur.peek(0) == b'{' {
            while !cur.done() && cur.bump() != b'}' {}
        }
    } else {
        cur.bump(); // the char itself (multibyte tails swallowed below)
    }
    while !cur.done() && cur.peek(0) != b'\'' && !cur.peek(0).is_ascii_whitespace() {
        cur.bump(); // UTF-8 continuation bytes of a multibyte char
    }
    if cur.peek(0) == b'\'' {
        cur.bump(); // closing quote
    }
}

/// Consumes a numeric literal: digits, `_`, suffixes, hex/oct/bin, and
/// a float dot only when followed by a digit (so `0..n` stays a range).
fn lex_number(cur: &mut Cursor) {
    while !cur.done() && is_ident_cont(cur.peek(0)) {
        cur.bump();
    }
    if cur.peek(0) == b'.' && cur.peek(1).is_ascii_digit() {
        cur.bump();
        while !cur.done() && is_ident_cont(cur.peek(0)) {
            cur.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let src = r##"let s = "fn fake() { }"; let r = r#"also "fn" here"#; call();"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "r", "call"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
        // Escaped and unicode chars still close correctly.
        let l2 = lex(r"let c = '\n'; let u = '\u{1F600}'; done();");
        assert!(l2.tokens.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn nested_block_comments_and_side_channel() {
        let l = lex("a(); /* outer /* inner */ still comment */ b(); // SAFETY: tail");
        let ids = idents("a(); /* outer /* inner */ still comment */ b();");
        assert_eq!(ids, vec!["a", "b"]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("inner"));
        assert!(l.comments[1].text.contains("SAFETY"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..n { let x = 1.5e3; let y = 0xffu64; }");
        let dots = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct('.'))
            .count();
        assert_eq!(dots, 2, "both dots of `0..n` survive");
    }

    #[test]
    fn raw_identifiers_lose_their_sigil() {
        assert_eq!(idents("r#fn(r#type)"), vec!["fn", "type"]);
    }

    #[test]
    fn positions_are_one_based_lines() {
        let l = lex("a\n  b");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }
}
