//! trinity-lint: workspace static analysis for the lazy-reduction and
//! backend-identity invariants.
//!
//! The runtime enforces the `[0, 2p)` discipline with
//! `debug_assert_domain!` and the strict-oracle identity suites; this
//! crate makes the same contracts checkable *without running anything*,
//! so CI fails fast and the rules are greppable. Everything is built
//! over `std` only (the build environment is offline): a hand-rolled
//! lexer ([`lexer`]), a token-stream item/call extractor ([`parse`]),
//! the rule catalogue ([`rules`]), and rustc-style / JSON diagnostics
//! ([`diag`]).
//!
//! # Suppressing a finding
//!
//! ```text
//! // trinity-lint: allow(<rule>): <reason — mandatory>
//! ```
//!
//! placed directly above the offending line (attribute lines and
//! further comment lines in between are fine). An allow with an
//! unknown rule name or a missing reason is itself a finding
//! (`bad-allow`).

pub mod diag;
pub mod lexer;
pub mod parse;
pub mod rules;

use diag::Finding;
use parse::FileModel;
use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// One parsed allow comment.
#[derive(Debug)]
struct Allow {
    rule: String,
    file: String,
    /// First code line after the comment — the line findings must sit
    /// on to be suppressed.
    target_line: u32,
    has_reason: bool,
}

/// Directories never scanned: third-party vendored code, build output,
/// VCS metadata, and the linter itself (its fixtures are deliberately
/// full of violations).
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "lint"];

/// Lints an in-memory file set of `(path, source)` pairs. Paths should
/// be workspace-relative with forward slashes; rule gating keys off
/// them (`tests/`, `benches/`, `fhe-math/src/kernel.rs`).
pub fn lint_files(files: &[(String, String)]) -> Vec<Finding> {
    let models: Vec<FileModel> = files
        .iter()
        .map(|(p, s)| parse::build_model(p, s))
        .collect();

    let mut findings = rules::run(&models);

    // Allow-comment pass: collect suppressions, flag malformed ones.
    let known: HashSet<&str> = rules::RULES.iter().copied().collect();
    let mut allows = Vec::new();
    for m in &models {
        for c in &m.lexed.comments {
            // Doc comments (`///`, `//!`, `/** .. */`) frequently *mention*
            // the allow syntax; only plain comments are directives. The
            // lexer strips the `//`/`/*` sigils, so a doc comment's text
            // starts with the third sigil character.
            if c.text.starts_with('/') || c.text.starts_with('!') || c.text.starts_with('*') {
                continue;
            }
            let Some(pos) = c.text.find("trinity-lint:") else {
                continue;
            };
            let rest = &c.text[pos + "trinity-lint:".len()..];
            let Some(open) = rest.find("allow(") else {
                findings.push(bad_allow(m, c.line_start, "expected `allow(<rule>)`"));
                continue;
            };
            let after = &rest[open + "allow(".len()..];
            let Some(close) = after.find(')') else {
                findings.push(bad_allow(m, c.line_start, "unclosed `allow(`"));
                continue;
            };
            let rule = after[..close].trim().to_owned();
            if !known.contains(rule.as_str()) {
                findings.push(bad_allow(
                    m,
                    c.line_start,
                    &format!("unknown rule `{rule}` (see `trinity-lint --list-rules`)"),
                ));
                continue;
            }
            let tail = after[close + 1..].trim_start();
            let has_reason = tail.starts_with(':') && !tail[1..].trim().is_empty();
            if !has_reason {
                findings.push(bad_allow(
                    m,
                    c.line_start,
                    &format!(
                        "allow({rule}) needs a reason: \
                         `// trinity-lint: allow({rule}): <why this is sound>`"
                    ),
                ));
            }
            allows.push(Allow {
                rule,
                file: m.path.clone(),
                target_line: allow_target_line(m, c.line_end),
                has_reason,
            });
        }
    }

    findings.retain(|f| {
        !allows.iter().any(|a| {
            a.has_reason && a.rule == f.rule && a.file == f.file && a.target_line == f.line
        })
    });
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    findings.dedup();
    findings
}

fn bad_allow(m: &FileModel, line: u32, why: &str) -> Finding {
    Finding {
        rule: "bad-allow",
        file: m.path.clone(),
        line,
        col: 1,
        message: format!("malformed trinity-lint allow comment: {why}"),
        help: "syntax: `// trinity-lint: allow(<rule>): <reason>` — the reason is \
               mandatory and should say why the invariant holds anyway"
            .into(),
    }
}

/// First code line after the comment ending on `comment_end` (1-based),
/// skipping blanks, further comments, and attribute lines, up to a
/// 12-line window.
fn allow_target_line(m: &FileModel, comment_end: u32) -> u32 {
    let mut line = comment_end + 1;
    let last = m.lines.len() as u32;
    let mut budget = 12;
    while line <= last && budget > 0 {
        let text = m.lines[(line - 1) as usize].trim();
        let skip = text.is_empty()
            || text.starts_with("//")
            || text.starts_with("/*")
            || text.starts_with('*')
            || text.starts_with("#[")
            || text.starts_with("#!");
        if !skip {
            return line;
        }
        line += 1;
        budget -= 1;
    }
    comment_end + 1
}

/// Walks the workspace at `root`, lints every non-vendored `.rs` file,
/// and returns the surviving findings.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk / file reads.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut paths = Vec::new();
    collect_rs(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let src = std::fs::read_to_string(root.join(&p))?;
        files.push((p, src));
    }
    Ok(lint_files(&files))
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel: PathBuf = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(src: &str) -> Vec<Finding> {
        lint_files(&[("crates/x/src/a.rs".into(), src.into())])
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let f = lint_src(
            "// trinity-lint: allow(unsafe-missing-safety): test shim, no invariant.\n\
             fn f() { unsafe { g() } }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_skips_attributes_and_comment_continuations() {
        let f = lint_src(
            "// trinity-lint: allow(unsafe-missing-safety): reason here\n\
             // continuation of the prose.\n\
             #[inline]\n\
             fn f() { unsafe { g() } }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_without_reason_is_bad_and_does_not_suppress() {
        let f = lint_src(
            "// trinity-lint: allow(unsafe-missing-safety)\n\
             fn f() { unsafe { g() } }\n",
        );
        assert!(f.iter().any(|x| x.rule == "bad-allow"), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "unsafe-missing-safety"), "{f:?}");
    }

    #[test]
    fn allow_with_unknown_rule_is_bad() {
        let f = lint_src("// trinity-lint: allow(no-such-rule): whatever\nfn f() {}\n");
        assert!(f
            .iter()
            .any(|x| x.rule == "bad-allow" && x.message.contains("no-such-rule")));
    }

    #[test]
    fn findings_are_sorted_and_deduped() {
        let f = lint_src("fn f() { unsafe { g() } }\nfn h() { unsafe { g() } }\n");
        assert_eq!(f.len(), 2);
        assert!(f[0].line < f[1].line);
    }
}
