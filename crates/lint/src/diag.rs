//! Findings and their text / JSON rendering.
//!
//! JSON output is hand-rolled (zero-dependency crate): the schema is a
//! flat array of objects with string/number fields, so a tiny escaper
//! is all that is needed.

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name, e.g. `lazy-domain`.
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to suppress with a reasoned allow).
    pub help: String,
}

impl Finding {
    /// rustc-style one-line header plus an indented help line.
    pub fn render_text(&self) -> String {
        format!(
            "error[{rule}]: {msg}\n  --> {file}:{line}:{col}\n  help: {help}\n",
            rule = self.rule,
            msg = self.message,
            file = self.file,
            line = self.line,
            col = self.col,
            help = self.help,
        )
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full findings list as a stable JSON document:
/// `{"findings": [...], "count": N}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\", \"help\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            f.col,
            json_escape(&f.message),
            json_escape(&f.help),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "lazy-domain",
            file: "crates/ckks/src/keyswitch.rs".into(),
            line: 42,
            col: 9,
            message: "strict kernel `add_assign` called on lazy receiver `acc`".into(),
            help: "canonicalize first".into(),
        }
    }

    #[test]
    fn text_render_is_rustc_shaped() {
        let t = sample().render_text();
        assert!(t.starts_with("error[lazy-domain]: "));
        assert!(t.contains("--> crates/ckks/src/keyswitch.rs:42:9"));
        assert!(t.contains("help: canonicalize first"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut f = sample();
        f.message = "quote \" backslash \\ newline \n".into();
        let j = render_json(&[f]);
        assert!(j.contains("\\\" backslash \\\\ newline \\n"));
        assert!(j.contains("\"count\": 1"));
        let empty = render_json(&[]);
        assert!(empty.contains("\"findings\": []"));
        assert!(empty.contains("\"count\": 0"));
    }
}
