//! The `trinity-lint` CLI: lints the workspace and exits non-zero on
//! findings, so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
trinity-lint — static analysis for the lazy-reduction and backend-identity invariants

USAGE:
    trinity-lint [--root <dir>] [--format text|json] [--list-rules]

OPTIONS:
    --root <dir>       Workspace root to scan (default: the nearest ancestor
                       of the current directory containing Cargo.toml, else .)
    --format <fmt>     `text` (rustc-style, default) or `json`
    --list-rules       Print the rule catalogue and exit
    -h, --help         This message

EXIT CODES:
    0  clean
    1  findings reported
    2  usage or I/O error";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("text");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = "text".into(),
                Some("json") => format = "json".into(),
                _ => return usage_error("--format must be `text` or `json`"),
            },
            "--list-rules" => {
                for r in trinity_lint::rules::RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = root.unwrap_or_else(default_root);
    let findings = match trinity_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trinity-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        print!("{}", trinity_lint::diag::render_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render_text());
        }
        if findings.is_empty() {
            eprintln!("trinity-lint: clean ({})", root.display());
        } else {
            eprintln!("trinity-lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Nearest ancestor with a Cargo.toml (so the binary works from any
/// subdirectory of the workspace), falling back to `.`.
fn default_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() {
            // Prefer the outermost Cargo.toml below the filesystem
            // root: keep climbing while a parent also has one.
            let has_parent_manifest = dir.parent().is_some_and(|p| p.join("Cargo.toml").is_file());
            if !has_parent_manifest {
                return dir;
            }
        }
        match dir.parent() {
            Some(p) => dir = p.to_path_buf(),
            None => return PathBuf::from("."),
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("trinity-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
