// Fixture: rule `env-read-outside-selector`.
//
// Only the backend selector module (fhe-math/src/kernel.rs) may read
// process environment; configuration everywhere else must arrive as
// explicit parameters.

pub fn thread_count() -> usize {
    std::env::var("TRINITY_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
