// Fixture: rule `missing-strict-oracle`.
//
// `fold_lazy` asserts its window and is test-covered, but there is no
// `fold` / `fold_strict` in the file for the identity suites to pin it
// against — an unfalsifiable lazy kernel.

pub fn fold_lazy(x: &mut RnsPoly) {
    crate::debug_assert_domain!(within_2p: x, "fold_lazy");
    x.halve_residues();
}

#[cfg(test)]
mod tests {
    #[test]
    fn fold_does_something() {
        let mut a = sample();
        fold_lazy(&mut a);
    }
}
