// Fixture: rule `missing-domain-assert`.
//
// `widen_lazy` is a public lazy kernel entry but never invokes the
// shared `debug_assert_domain!` macro, so its input window is
// unchecked even in debug builds. (The strict counterpart and the test
// reference below keep the sibling rules quiet.)

pub fn widen_lazy(x: &mut RnsPoly) {
    x.double_residues();
}

pub fn widen(x: &mut RnsPoly) {
    crate::debug_assert_domain!(canonical: x, "widen");
    x.double_residues();
    x.canonicalize();
}

#[cfg(test)]
mod tests {
    #[test]
    fn widen_matches_lazy() {
        let mut a = sample();
        widen_lazy(&mut a);
    }
}
