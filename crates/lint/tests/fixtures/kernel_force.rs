// Fixture: rule `kernel-force-outside-test`.
//
// Swapping the process-global kernel backend is a test/bench
// affordance; production code — the service layer above all — must
// ride `kernel::active()`'s one-time resolution.

pub fn pin_backend_for_tenant() {
    fhe_math::kernel::force(&fhe_math::kernel::ScalarBackend);
}
