// Fixture: correctly reasoned allow comments — the whole file must
// lint clean. Two attachment shapes are exercised: an allow directly
// above the offending statement, and an allow above a function with
// attribute lines in between (the attachment scan skips them).

pub fn shim() -> u64 {
    // trinity-lint: allow(unsafe-missing-safety): FFI shim for the
    // test harness only; the callee is a leaf libc call with no
    // invariants to state.
    unsafe { libc_monotonic_ns() }
}

// trinity-lint: allow(missing-domain-assert): window-agnostic by
// construction — the kernel only permutes slots and never touches the
// residue values.
#[inline]
pub fn rotate_lazy(x: &mut RnsPoly) {
    x.permute_slots();
}

pub fn rotate(x: &mut RnsPoly) {
    crate::debug_assert_domain!(canonical: x, "rotate");
    x.permute_slots();
}

#[cfg(test)]
mod tests {
    #[test]
    fn rotate_matches_lazy() {
        let mut a = sample();
        rotate_lazy(&mut a);
    }
}
