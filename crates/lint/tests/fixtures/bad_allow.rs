// Fixture: rule `bad-allow`.

// trinity-lint: allow(no-such-rule): suppressing a rule that does not exist
pub fn unknown_rule() {}

// trinity-lint: allow(lock-unwrap)
pub fn missing_reason(&self) -> usize {
    let guard = self.registry.lock().unwrap();
    guard.len()
}
