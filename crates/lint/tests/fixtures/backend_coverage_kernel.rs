// Fixture: rule `backend-coverage`. Linted under the path
// `crates/fhe-math/src/kernel.rs` so the rule engages (it only runs on
// the backend-selector module).
//
// `forward` is swept by the test module below; the `forward_batch`
// default is not referenced by any test — the classic way a batched
// entry silently diverges from its per-row loop.

pub trait KernelBackend {
    fn forward(&self, t: &NttTable, a: &mut [u64]);
    fn forward_batch(&self, t: &NttTable, rows: &mut [&mut [u64]]) {
        for row in rows {
            self.forward(t, row);
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_forward() {
        let b = backend();
        b.forward(&table(), &mut row());
    }
}
