// Fixture: rule `backend-coverage`. Linted under the path
// `crates/fhe-math/src/kernel.rs` so the rule engages (it only runs on
// the backend-selector module).
//
// `forward` and `convert_exact_batch` are swept by the test module
// below; the `forward_batch` and `convert_approx_batch` defaults are
// not referenced by any test — the classic way a batched entry
// silently diverges from its per-row loop. The BConv batch entries are
// trait methods like any other, so the rule picks them up with no
// special-casing.

pub trait KernelBackend {
    fn forward(&self, t: &NttTable, a: &mut [u64]);
    fn forward_batch(&self, t: &NttTable, rows: &mut [&mut [u64]]) {
        for row in rows {
            self.forward(t, row);
        }
    }
    fn convert_approx_batch(&self, to: &[Modulus], w: &[u64], y: &[u64], out: &mut [u64]) {
        let _ = (to, w, y, out);
    }
    fn convert_exact_batch(&self, to: &[Modulus], w: &[u64], y: &[u64], out: &mut [u64]) {
        let _ = (to, w, y, out);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_forward() {
        let b = backend();
        b.forward(&table(), &mut row());
        b.convert_exact_batch(&moduli(), &weights(), &digits(), &mut out());
    }
}
