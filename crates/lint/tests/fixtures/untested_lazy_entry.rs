// Fixture: rule `untested-lazy-entry`.
//
// `scale_lazy` has the assert and the strict counterpart, but nothing
// in the test corpus (no `tests/` file, no `#[cfg(test)]` module)
// ever names it.

pub fn scale_lazy(x: &mut RnsPoly, k: u64) {
    crate::debug_assert_domain!(within_2p: x, "scale_lazy");
    x.scale_residues(k);
}

pub fn scale(x: &mut RnsPoly, k: u64) {
    crate::debug_assert_domain!(canonical: x, "scale");
    x.scale_residues(k);
    x.canonicalize();
}
