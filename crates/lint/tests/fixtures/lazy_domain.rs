// Fixture: rule `lazy-domain`.
//
// Part 1: strict kernel on a receiver that provably holds lazy
// [0, 2p) residues — a guaranteed debug_assert failure at runtime.
// Part 2: a declared lazy-chain root reaching for the strict oracle
// directly.

pub fn tensor(a: &mut RnsPoly, b: &RnsPoly) {
    a.to_eval_lazy();
    a.add_assign(b); // <- finding: add_assign requires canonical input
}

pub fn scoped_fold_is_clean(a: &mut RnsPoly, b: &RnsPoly) {
    {
        a.to_eval_lazy();
        a.canonicalize();
    }
    a.add_assign(b); // clean: the fold cleared the window
}

pub fn relinearize(ct: &Ciphertext3, rlk: &SwitchingKey) -> Ciphertext {
    let (ks0, ks1) = key_switch_strict(ct, rlk); // <- finding: strict oracle in a lazy chain
    let mut c0 = ct.d0.clone();
    c0.add_assign_lazy(&ks0);
    c0.canonicalize();
    assemble(c0, ks1)
}
