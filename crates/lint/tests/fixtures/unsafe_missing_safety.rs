// Fixture: rule `unsafe-missing-safety`.

pub fn undocumented(&self, t: Task<'_>) {
    let erased = unsafe { std::mem::transmute::<Task<'_>, ErasedTask>(t) };
    self.queue.push(erased);
}

pub fn documented(&self, t: Task<'_>) {
    // SAFETY: the erased task cannot outlive this call — dispatch
    // blocks until every worker acknowledges completion, so the
    // 'static lie never escapes the stack frame that owns `t`.
    let erased = unsafe { std::mem::transmute::<Task<'_>, ErasedTask>(t) };
    self.queue.push(erased);
}
