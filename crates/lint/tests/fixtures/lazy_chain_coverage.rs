// Fixture: rule `lazy-chain-coverage`.
//
// `mul_no_relin` is a declared lazy-chain root, but this version only
// ever calls canonical kernels — the lazy path silently fell out of
// the pipeline, which is exactly the regression the rule exists for.

pub fn mul_no_relin(a: &Ciphertext, b: &Ciphertext) -> Ciphertext3 {
    let mut d0 = a.c0.clone();
    plain_tensor(&mut d0, b);
    finishing_touches(d0)
}

fn plain_tensor(d0: &mut RnsPoly, b: &Ciphertext) {
    d0.mul_assign_pointwise(&b.c0);
}

fn finishing_touches(d0: RnsPoly) -> Ciphertext3 {
    package(d0)
}
