// Fixture: rule `guard-across-dispatch`.
//
// `broken_dispatch` holds the injector guard across the job sends;
// `scoped_recv` shows the sanctioned shape (guard dies with its block
// before anything is dispatched) and must stay clean.

pub fn broken_dispatch(&self, jobs: Vec<Job>) {
    let inject = self.inject.lock().unwrap_or_else(PoisonError::into_inner);
    for job in jobs {
        inject.send(job);
    }
}

pub fn scoped_recv(queue: &Mutex<Receiver<Job>>, done: &Sender<Out>) {
    let job = {
        let guard = queue.lock().unwrap_or_else(PoisonError::into_inner);
        guard.recv()
    };
    let out = process(job);
    let _ = done.send(out);
}

pub fn dropped_guard_is_clean(&self, job: Job) {
    let slot = self.state.lock().unwrap_or_else(PoisonError::into_inner);
    record(&slot);
    drop(slot);
    self.pool.send(job);
}
