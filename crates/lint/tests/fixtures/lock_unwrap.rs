// Fixture: rule `lock-unwrap`.
//
// Direct unwrap/expect on lock results panics the caller on a
// poisoned-but-consistent lock; the poison-recovery helpers are the
// sanctioned pattern and stay clean.

pub fn counts(&self) -> usize {
    let guard = self.registry.lock().unwrap();
    guard.len()
}

pub fn names(&self) -> Vec<String> {
    self.index.read().expect("index poisoned").keys().collect()
}

fn read_cache(
    lock: &RwLock<HashMap<u64, Entry>>,
) -> RwLockReadGuard<'_, HashMap<u64, Entry>> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}
