//! Golden self-tests: every rule in the catalogue is demonstrated by a
//! known-bad fixture under `tests/fixtures/`, and the allow-comment
//! machinery is demonstrated by a known-clean one.

use trinity_lint::diag::Finding;
use trinity_lint::lint_files;

/// Lints one fixture under a synthetic workspace-relative path.
fn lint_fixture(path: &str, src: &str) -> Vec<Finding> {
    lint_files(&[(path.to_owned(), src.to_owned())])
}

/// Asserts the findings are exactly `expected` as `(rule, line)` pairs
/// (order-insensitive).
fn assert_golden(findings: &[Finding], expected: &[(&str, u32)]) {
    let got: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    let mut got_sorted = got.clone();
    got_sorted.sort_unstable();
    let mut want = expected.to_vec();
    want.sort_unstable();
    assert_eq!(got_sorted, want, "full findings: {findings:#?}");
}

#[test]
fn lazy_domain() {
    let f = lint_fixture(
        "crates/x/src/lazy_domain.rs",
        include_str!("fixtures/lazy_domain.rs"),
    );
    assert_golden(&f, &[("lazy-domain", 10), ("lazy-domain", 22)]);
    assert!(f[0].message.contains("add_assign"), "{f:#?}");
    assert!(f[1].message.contains("key_switch_strict"), "{f:#?}");
}

#[test]
fn lazy_chain_coverage() {
    let f = lint_fixture(
        "crates/x/src/lazy_chain_coverage.rs",
        include_str!("fixtures/lazy_chain_coverage.rs"),
    );
    assert_golden(&f, &[("lazy-chain-coverage", 7)]);
}

#[test]
fn missing_domain_assert() {
    let f = lint_fixture(
        "crates/x/src/missing_domain_assert.rs",
        include_str!("fixtures/missing_domain_assert.rs"),
    );
    assert_golden(&f, &[("missing-domain-assert", 8)]);
}

#[test]
fn missing_strict_oracle() {
    let f = lint_fixture(
        "crates/x/src/missing_strict_oracle.rs",
        include_str!("fixtures/missing_strict_oracle.rs"),
    );
    assert_golden(&f, &[("missing-strict-oracle", 7)]);
}

#[test]
fn untested_lazy_entry() {
    let f = lint_fixture(
        "crates/x/src/untested_lazy_entry.rs",
        include_str!("fixtures/untested_lazy_entry.rs"),
    );
    assert_golden(&f, &[("untested-lazy-entry", 7)]);
}

#[test]
fn backend_coverage() {
    // The backend rule only engages on the selector module's path.
    // Scanning a lone kernel.rs puts the linter in workspace mode, so
    // the six undefined chain roots also (correctly) report stale
    // config; filter to the rule under test plus that known noise.
    let f = lint_fixture(
        "crates/fhe-math/src/kernel.rs",
        include_str!("fixtures/backend_coverage_kernel.rs"),
    );
    let backend: Vec<_> = f.iter().filter(|x| x.rule == "backend-coverage").collect();
    assert_eq!(backend.len(), 2, "{f:#?}");
    assert_eq!(backend[0].line, 14);
    assert!(backend[0].message.contains("forward_batch"));
    // The pooled-BConv batch entries are ordinary trait methods to the
    // rule: uncovered `convert_approx_batch` is flagged, covered
    // `convert_exact_batch` is not.
    assert!(backend[1].message.contains("convert_approx_batch"));
    assert!(
        f.iter()
            .all(|x| x.rule == "backend-coverage" || x.rule == "lazy-chain-coverage"),
        "{f:#?}"
    );
}

#[test]
fn guard_across_dispatch() {
    let f = lint_fixture(
        "crates/x/src/guard_across_dispatch.rs",
        include_str!("fixtures/guard_across_dispatch.rs"),
    );
    assert_golden(&f, &[("guard-across-dispatch", 8)]);
    assert!(f[0].message.contains("inject"), "{f:#?}");
}

#[test]
fn lock_unwrap() {
    let f = lint_fixture(
        "crates/x/src/lock_unwrap.rs",
        include_str!("fixtures/lock_unwrap.rs"),
    );
    assert_golden(&f, &[("lock-unwrap", 8), ("lock-unwrap", 13)]);
}

#[test]
fn env_read_outside_selector() {
    let f = lint_fixture(
        "crates/x/src/env_read.rs",
        include_str!("fixtures/env_read.rs"),
    );
    assert_golden(&f, &[("env-read-outside-selector", 8)]);
}

#[test]
fn kernel_force_outside_test() {
    let f = lint_fixture(
        "crates/service/src/kernel_force.rs",
        include_str!("fixtures/kernel_force.rs"),
    );
    assert_golden(&f, &[("kernel-force-outside-test", 8)]);
}

#[test]
fn unsafe_missing_safety() {
    let f = lint_fixture(
        "crates/x/src/unsafe_missing_safety.rs",
        include_str!("fixtures/unsafe_missing_safety.rs"),
    );
    assert_golden(&f, &[("unsafe-missing-safety", 4)]);
}

#[test]
fn bad_allow() {
    let f = lint_fixture(
        "crates/x/src/bad_allow.rs",
        include_str!("fixtures/bad_allow.rs"),
    );
    assert_golden(
        &f,
        &[("bad-allow", 3), ("bad-allow", 6), ("lock-unwrap", 8)],
    );
}

#[test]
fn allow_suppression_keeps_reasoned_allows_clean() {
    let f = lint_fixture(
        "crates/x/src/allow_suppression.rs",
        include_str!("fixtures/allow_suppression.rs"),
    );
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn every_rule_has_a_fixture_demonstration() {
    // The catalogue and this file must not drift apart: each rule name
    // appears in at least one golden expectation above. Checked
    // textually against this source file.
    let me = include_str!("fixtures.rs");
    for rule in trinity_lint::rules::RULES {
        assert!(
            me.contains(&format!("\"{rule}\"")),
            "rule `{rule}` has no fixture assertion"
        );
    }
}

#[test]
fn json_output_roundtrips_the_findings() {
    let f = lint_fixture(
        "crates/x/src/env_read.rs",
        include_str!("fixtures/env_read.rs"),
    );
    let json = trinity_lint::diag::render_json(&f);
    assert!(json.contains("\"rule\": \"env-read-outside-selector\""));
    assert!(json.contains("\"count\": 1"));
}
