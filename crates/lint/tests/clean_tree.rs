//! The real workspace must lint clean: this is the same gate CI runs
//! (`cargo run -p trinity-lint`), kept as a test so `cargo test`
//! catches invariant regressions without a separate step.

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let findings = trinity_lint::lint_workspace(root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean; fix or add a reasoned \
         `// trinity-lint: allow(..)`:\n{}",
        findings
            .iter()
            .map(trinity_lint::diag::Finding::render_text)
            .collect::<String>()
    );
}

#[test]
fn workspace_scan_is_workspace_mode() {
    // Guard against the walker silently skipping fhe-math (which would
    // disable the cross-file rules and make the clean assertion above
    // vacuous): the selector module must be in the scanned set.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    assert!(root.join("crates/fhe-math/src/kernel.rs").is_file());
}
