//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access, so this workspace
//! vendors the slice of `proptest` its test suites use: the
//! [`proptest!`] macro, [`Strategy`] over numeric ranges and
//! [`any`]`::<T>()`, [`collection::vec`], [`ProptestConfig`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case reports its inputs (via the panic
//!   message) but is not minimised;
//! * generation is deterministic per (test name, case index), so runs
//!   are reproducible without a `proptest-regressions` directory.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic per-case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the generator for one test case, seeded from the test
    /// path and case index so every run draws identical inputs.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; not a failure.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Runner configuration; only the case count is tunable here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A value generator: the core abstraction of the crate.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

/// Collection strategies (`vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec: empty size range");
            Self {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "vec: empty size range");
            Self {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_excl);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Yields vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Silently discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Mirrors upstream's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop(x in 0u64..10, v in collection::vec(any::<bool>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                // `prop_assume!` rejections regenerate with a fresh
                // case index instead of consuming the budget, so the
                // configured number of cases actually run. As
                // upstream does, a pathological reject rate fails the
                // test rather than passing it vacuously.
                let __max_rejects = (__config.cases as u64).saturating_mul(10).max(256);
                let mut __passed: u64 = 0;
                let mut __rejects: u64 = 0;
                let mut __case: u64 = 0;
                while __passed < __config.cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    __case += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            __rejects += 1;
                            if __rejects > __max_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections \
                                     ({} rejects for {} accepted cases)",
                                    stringify!($name),
                                    __rejects,
                                    __passed
                                )
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {}: {}",
                                __case - 1,
                                stringify!($name),
                                msg
                            )
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 3u64..9, y in -2i64..=2, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths(v in collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::for_case("t", 0);
        let mut b = super::TestRng::for_case("t", 0);
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
