//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access, so this workspace
//! vendors the slice of `proptest` its test suites use: the
//! [`proptest!`] macro, [`Strategy`] over numeric ranges and
//! [`any`]`::<T>()`, [`collection::vec`], [`ProptestConfig`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * shrinking is simpler than upstream's: integers binary-search
//!   toward the smallest in-range value (0 for signed/`any` values),
//!   vectors shrink their length toward the minimum and their elements
//!   recursively, and floats do not shrink. A failing case is minimised
//!   by re-running the body on [`Strategy::shrink`] candidates until no
//!   candidate still fails, then reported with its shrink count;
//! * generation is deterministic per (test name, case index), so runs
//!   are reproducible without a `proptest-regressions` directory.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic per-case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the generator for one test case, seeded from the test
    /// path and case index so every run draws identical inputs.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; not a failure.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Runner configuration; only the case count is tunable here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A value generator: the core abstraction of the crate.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, most aggressive
    /// first. The runner re-checks candidates and recurses on the first
    /// that still fails, so returning midpoints here yields a binary
    /// search. The default (no candidates) disables shrinking.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Binary-search shrink candidates for an integer `v` with shrink
/// target `t` (same range): the target itself, then a geometric ladder
/// `v ∓ d/2, v ∓ d/4, ..., v ∓ 1` (d = |v - t|) ascending toward `v`.
/// The runner greedily takes the first candidate that still fails, so
/// re-shrinking from that candidate performs a true binary search on
/// the failure boundary instead of degenerating into unit steps.
///
/// `$ut` is the same-width unsigned type: the distance is computed via
/// `wrapping_sub` + cast, which is exact for any in-range pair
/// (including `v = iN::MIN`, `t = 0`, whose distance `2^(N-1)` only
/// fits unsigned).
macro_rules! int_shrink_ladder {
    ($t:ty, $ut:ty, $v:expr, $target:expr) => {{
        let (v, target): ($t, $t) = ($v, $target);
        if v == target {
            Vec::new()
        } else {
            let dist: $ut = if v >= target {
                v.wrapping_sub(target) as $ut
            } else {
                target.wrapping_sub(v) as $ut
            };
            let mut out = vec![target];
            let mut g = dist / 2;
            while g > 0 {
                // g <= dist/2 < 2^(N-1) fits $t, and the step stays
                // strictly between target and v.
                let cand = if v >= target {
                    v.wrapping_sub(g as $t)
                } else {
                    v.wrapping_add(g as $t)
                };
                out.push(cand);
                g /= 2;
            }
            out
        }
    }};
}

/// The in-range value closest to zero — the shrink target of a range
/// strategy.
macro_rules! int_shrink_target {
    ($t:ty, $lo:expr, $hi:expr) => {{
        let (lo, hi): ($t, $t) = ($lo, $hi);
        #[allow(unused_comparisons)]
        if lo <= 0 && hi >= 0 {
            0
        } else if lo > 0 {
            lo
        } else {
            hi
        }
    }};
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Candidate simplifications of a failing value (see
    /// [`Strategy::shrink`]); integers halve toward zero, `bool` falls
    /// to `false`, everything else does not shrink.
    fn shrink_value(value: &Self) -> Vec<Self> {
        let _ = value;
        Vec::new()
    }
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(f32, f64);

macro_rules! impl_arbitrary_int {
    ($(($t:ty, $ut:ty)),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }

            fn shrink_value(value: &Self) -> Vec<Self> {
                int_shrink_ladder!($t, $ut, *value, 0)
            }
        }
    )*};
}
impl_arbitrary_int!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (u128, u128),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (i128, u128),
    (isize, usize)
);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }

    fn shrink_value(value: &Self) -> Vec<Self> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_value(value)
    }
}

/// The canonical strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($(($t:ty, $ut:ty)),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let target = int_shrink_target!($t, self.start, self.end - 1);
                int_shrink_ladder!($t, $ut, *value, target)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let target = int_shrink_target!($t, *self.start(), *self.end());
                int_shrink_ladder!($t, $ut, *value, target)
            }
        }
    )*};
}
impl_strategy_for_int_ranges!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (u128, u128),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (i128, u128),
    (isize, usize)
);

macro_rules! impl_strategy_for_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_float_ranges!(f32, f64);

/// Collection strategies (`vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive length bounds for [`vec()`](fn@vec).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec: empty size range");
            Self {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "vec: empty size range");
            Self {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_excl);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let len = value.len();
            let mut out = Vec::new();
            // Length shrinking, binary-searching toward the minimum:
            // halve toward `lo` (keeping either end), then drop one.
            if len > self.size.lo {
                let half = (len + self.size.lo) / 2;
                if half < len {
                    out.push(value[..half].to_vec());
                    out.push(value[len - half..].to_vec());
                }
                out.push(value[..len - 1].to_vec());
                out.push(value[1..].to_vec());
                // Equal candidates (e.g. when all elements coincide)
                // just cost a redundant re-run; no dedup without
                // requiring PartialEq on element values.
            }
            // Element shrinking: every candidate of every slot, so the
            // runner's greedy pass binary-searches each element too.
            for (i, x) in value.iter().enumerate() {
                for cand in self.element.shrink(x) {
                    let mut w = value.clone();
                    w[i] = cand;
                    out.push(w);
                }
            }
            out
        }
    }

    /// Yields vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Tuples of strategies are strategies over tuples of values — the
/// [`proptest!`] runner bundles a test's arguments this way so the
/// whole case can be generated, cloned, and shrunk as one value.
/// Shrinking simplifies one component at a time, holding the others
/// fixed.
macro_rules! impl_strategy_for_tuples {
    ($(($($S:ident | $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone),+
        {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut w = value.clone();
                        w.$idx = cand;
                        out.push(w);
                    }
                )+
                out
            }
        }
    )*};
}
impl_strategy_for_tuples!((S0 | 0)(S0 | 0, S1 | 1)(S0 | 0, S1 | 1, S2 | 2)(
    S0 | 0,
    S1 | 1,
    S2 | 2,
    S3 | 3
)(S0 | 0, S1 | 1, S2 | 2, S3 | 3, S4 | 4)(
    S0 | 0,
    S1 | 1,
    S2 | 2,
    S3 | 3,
    S4 | 4,
    S5 | 5
)(S0 | 0, S1 | 1, S2 | 2, S3 | 3, S4 | 4, S5 | 5, S6 | 6)(
    S0 | 0,
    S1 | 1,
    S2 | 2,
    S3 | 3,
    S4 | 4,
    S5 | 5,
    S6 | 6,
    S7 | 7
));

/// The [`proptest!`] runner: generates `config.cases` values from
/// `strategy`, re-generating on `prop_assume!` rejections, and on the
/// first failure greedily minimises the case through
/// [`Strategy::shrink`] (first still-failing candidate wins, up to 1024
/// shrink steps) before panicking with the minimised inputs' message.
///
/// Public so the macro expansion can call it; not part of the upstream
/// API surface.
pub fn run_property<S, F>(config: &ProptestConfig, test_path: &str, strategy: S, body: F)
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    // `prop_assume!` rejections regenerate with a fresh case index
    // instead of consuming the budget, so the configured number of
    // cases actually run. As upstream does, a pathological reject rate
    // fails the test rather than passing it vacuously.
    let max_rejects = (config.cases as u64).saturating_mul(10).max(256);
    let mut passed: u64 = 0;
    let mut rejects: u64 = 0;
    let mut case: u64 = 0;
    while passed < config.cases as u64 {
        let mut rng = TestRng::for_case(test_path, case);
        case += 1;
        let value = strategy.generate(&mut rng);
        match body(value.clone()) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "proptest {test_path}: too many prop_assume! rejections \
                         ({rejects} rejects for {passed} accepted cases)"
                    )
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                // Minimise: greedily accept the first shrink candidate
                // that still fails, until none do (rejected/passing
                // candidates are skipped).
                let mut best = value;
                let mut best_msg = msg;
                let mut shrinks: u32 = 0;
                'minimise: while shrinks < 1024 {
                    for cand in strategy.shrink(&best) {
                        if let Err(TestCaseError::Fail(m)) = body(cand.clone()) {
                            best = cand;
                            best_msg = m;
                            shrinks += 1;
                            continue 'minimise;
                        }
                    }
                    break;
                }
                let how = if shrinks == 0 {
                    String::from("not shrinkable")
                } else {
                    format!("minimised after {shrinks} shrinks")
                };
                panic!(
                    "proptest case {} of {test_path} ({how}): {best_msg}",
                    case - 1
                )
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Silently discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Mirrors upstream's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop(x in 0u64..10, v in collection::vec(any::<bool>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                // All of a case's strategies bundled as one tuple
                // strategy, so the runner can generate, clone and
                // shrink the whole case as a unit.
                $crate::run_property(
                    &__config,
                    concat!(module_path!(), "::", stringify!($name)),
                    ($(($strat),)+),
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 3u64..9, y in -2i64..=2, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths(v in collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::for_case("t", 0);
        let mut b = super::TestRng::for_case("t", 0);
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }

    /// Repeatedly taking the first still-failing candidate (the
    /// runner's policy) against a threshold predicate must converge to
    /// the boundary — the binary search the shrink candidates encode.
    fn minimise<S: Strategy>(
        strat: &S,
        mut v: S::Value,
        fails: impl Fn(&S::Value) -> bool,
    ) -> S::Value
    where
        S::Value: Clone,
    {
        assert!(fails(&v));
        'outer: for _ in 0..1024 {
            for cand in strat.shrink(&v) {
                if fails(&cand) {
                    v = cand;
                    continue 'outer;
                }
            }
            break;
        }
        v
    }

    #[test]
    fn integer_shrinking_binary_searches_to_boundary() {
        let strat = 0u64..1_000_000;
        let min = minimise(&strat, 987_654, |&v| v >= 333_333);
        assert_eq!(min, 333_333);
        let strat = -500_000i64..=500_000;
        let min = minimise(&strat, -400_000, |&v| v <= -123_456);
        assert_eq!(min, -123_456);
        // `any` values shrink toward zero.
        let min = minimise(&super::any::<u64>(), u64::MAX, |&v| v > 77);
        assert_eq!(min, 78);
    }

    #[test]
    fn vec_shrinking_minimises_length_and_elements() {
        let strat = collection::vec(0u32..1000, 1..64);
        let v: Vec<u32> = (0..40).map(|i| 500 + i).collect();
        // Failure needs any element >= 100: minimal is one element of 100.
        let min = minimise(&strat, v, |v| v.iter().any(|&x| x >= 100));
        assert_eq!(min, vec![100]);
    }

    #[test]
    fn tuple_shrinking_minimises_components_independently() {
        let strat = (0u64..1000, 0u64..1000);
        let min = minimise(&strat, (900, 800), |&(a, b)| a + b >= 150);
        assert_eq!(min.0 + min.1, 150);
    }

    #[test]
    fn shrunk_candidates_stay_in_range() {
        let strat = 10u64..20;
        for v in 10u64..20 {
            for c in strat.shrink(&v) {
                assert!((10..20).contains(&c), "candidate {c} escaped range");
                assert_ne!(c, v);
            }
        }
        let strat = -5i64..=5;
        for v in -5i64..=5 {
            for c in strat.shrink(&v) {
                assert!((-5..=5).contains(&c));
                assert_ne!(c, v);
            }
        }
        // The boundary values themselves are fixpoints.
        assert!(Strategy::shrink(&(10u64..20), &10).is_empty());
        assert!(Strategy::shrink(&(-5i64..=5), &0).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn runner_handles_tuple_values(v in collection::vec(any::<u8>(), 0..4), x in 1u64..9) {
            prop_assert!(v.len() < 4);
            prop_assert!((1..9).contains(&x));
        }
    }

    // Expanded without #[test] so the runner can be driven manually:
    // the property fails for every x >= 10, so the panic must report
    // the minimised boundary case, not whatever was drawn first.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        fn always_fails_above_ten(x in 0u64..1_000_000) {
            prop_assert!(x < 10, "x too big: {}", x);
        }
    }

    #[test]
    fn failing_case_is_minimised_in_panic_message() {
        let err = std::panic::catch_unwind(always_fails_above_ten).expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a formatted string")
            .clone();
        assert!(
            msg.contains("minimised after"),
            "panic message lacks shrink count: {msg}"
        );
        assert!(
            msg.contains("x too big: 10"),
            "panic message not minimised to the boundary: {msg}"
        );
    }
}
