//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so this workspace
//! vendors the slice of `rand` the Trinity reproduction actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream `rand`'s ChaCha12, but every consumer
//! in this workspace only relies on determinism-per-seed and basic
//! statistical quality, both of which hold.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the single source of raw bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array upstream; mirrored here).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (public-domain constants).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible "from thin air" by `Rng::gen`.
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range types `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws `x` uniformly from `[0, span)` without modulo bias worth
/// caring about (Lemire widening multiply).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let wide = u128::sample_standard(rng);
    // 128x128 -> high 128 bits via schoolbook split.
    let (a_hi, a_lo) = ((wide >> 64) as u64 as u128, wide as u64 as u128);
    let (b_hi, b_lo) = ((span >> 64) as u64 as u128, span as u64 as u128);
    let mid = a_hi * b_lo + ((a_lo * b_lo) >> 64);
    a_hi * b_hi + ((a_lo * b_hi + (mid as u64 as u128)) >> 64) + (mid >> 64)
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = uniform_below(rng, span);
                (self.start as $wide).wrapping_add(off as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128;
                if span == u128::MAX {
                    return <$t as Standard>::sample_standard(rng);
                }
                let off = uniform_below(rng, span + 1);
                (start as $wide).wrapping_add(off as $wide) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, u128 => u128,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                // Uniform in [0, 1] (53 bits over an inclusive
                // denominator), so `end` itself is reachable —
                // unlike the half-open range above.
                let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                start + (u as $t) * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // xoshiro forbids the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Returns a generator seeded from the system clock — for examples
/// only; tests should always use [`SeedableRng::seed_from_u64`].
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-8i64..8);
            assert!((-8..8).contains(&x));
            let y = rng.gen_range(0u64..3);
            assert!(y < 3);
            let z = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&z));
            let w = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
