//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access, so this workspace
//! vendors the slice of `criterion` its bench targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — warm-up plus a fixed sample of
//! timed batches, reporting min/mean — because this repository's
//! authoritative numbers come from the cycle simulator, not wall-clock
//! microbenchmarks.
//!
//! Like upstream, the first non-flag CLI argument is a **substring
//! filter**: `cargo bench -p trinity-bench --bench micro --
//! threaded_scaling` runs only the benchmarks whose `group/label`
//! contains `threaded_scaling` and skips the rest (their setup code
//! still runs; keep fixtures cheap).
//!
//! Setting `TRINITY_BENCH_JSON=<path>` additionally writes every
//! reported benchmark to `<path>` as a JSON document
//! (`{"meta": {"nproc", "commit", "backend"}, "benchmarks": [{"name",
//! "min_ns", "mean_ns", "samples"}, ..]}`); the committed
//! `BENCH_micro.json` at the workspace root is such a snapshot. The
//! `meta` header records the host CPU count, the source commit
//! (`TRINITY_BENCH_COMMIT` overrides the `git rev-parse` fallback) and
//! the `TRINITY_KERNEL_BACKEND` selection, so snapshots from different
//! hosts are never compared as like for like by accident.

#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The process-wide substring filter: the first CLI argument that is
/// not a flag (cargo passes `--bench` and friends as flags).
fn filter_arg() -> Option<&'static str> {
    static FILTER: OnceLock<Option<String>> = OnceLock::new();
    FILTER
        .get_or_init(|| std::env::args().skip(1).find(|a| !a.starts_with('-')))
        .as_deref()
}

/// Whether `label` survives `filter` (no filter = run everything).
fn label_matches(label: &str, filter: Option<&str>) -> bool {
    filter.is_none_or(|f| label.contains(f))
}

/// Machine-readable snapshot sink: when `TRINITY_BENCH_JSON` names a
/// file, every reported benchmark is appended to it as JSON. The whole
/// document is rewritten after each report so an interrupted run still
/// leaves valid JSON behind.
fn json_sink() -> Option<&'static str> {
    static SINK: OnceLock<Option<String>> = OnceLock::new();
    SINK.get_or_init(|| std::env::var("TRINITY_BENCH_JSON").ok())
        .as_deref()
}

struct JsonRecord {
    label: String,
    min_ns: u128,
    mean_ns: u128,
    samples: usize,
}

static JSON_RECORDS: Mutex<Vec<JsonRecord>> = Mutex::new(Vec::new());

fn record_json(label: &str, min: Duration, mean: Duration, samples: usize) {
    let Some(path) = json_sink() else { return };
    let mut records = JSON_RECORDS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    records.push(JsonRecord {
        label: label.to_owned(),
        min_ns: min.as_nanos(),
        mean_ns: mean.as_nanos(),
        samples,
    });
    if let Err(e) = std::fs::write(path, render_records(&records)) {
        eprintln!("criterion: cannot write TRINITY_BENCH_JSON ({path}): {e}");
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect()
}

/// Host metadata stamped into every snapshot so `BENCH_*.json` files
/// are comparable across machines: CPU count, source commit and the
/// kernel-backend selection in force. The commit honours
/// `TRINITY_BENCH_COMMIT` (CI sets it) and falls back to `git
/// rev-parse`; the backend mirrors `TRINITY_KERNEL_BACKEND` (empty =
/// the default resolution order).
fn host_meta() -> &'static str {
    static META: OnceLock<String> = OnceLock::new();
    META.get_or_init(|| {
        let nproc = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0);
        let commit = std::env::var("TRINITY_BENCH_COMMIT").ok().or_else(|| {
            std::process::Command::new("git")
                .args(["rev-parse", "--short", "HEAD"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        });
        let backend = std::env::var("TRINITY_KERNEL_BACKEND").unwrap_or_default();
        format!(
            "{{\"nproc\": {}, \"commit\": \"{}\", \"backend\": \"{}\"}}",
            nproc,
            json_escape(commit.as_deref().unwrap_or("unknown")),
            json_escape(if backend.is_empty() {
                "default"
            } else {
                &backend
            }),
        )
    })
}

fn render_records(records: &[JsonRecord]) -> String {
    let mut out = format!("{{\n  \"meta\": {},\n  \"benchmarks\": [\n", host_meta());
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        // Labels are bench identifiers (no quotes/backslashes), but
        // escape them anyway so the document can never go invalid.
        let label = json_escape(&r.label);
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}{}\n",
            label, r.min_ns, r.mean_ns, r.samples, sep
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Runs `body` repeatedly and records per-iteration timings.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Warm-up and batch sizing: aim for ~10ms per sample.
        let t0 = Instant::now();
        black_box(body());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = ((Duration::from_millis(10).as_nanos() / once.as_nanos()).max(1) as usize)
            .min(1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            self.samples.push(start.elapsed().div_f64(batch as f64));
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("  {label:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let mean = self
            .samples
            .iter()
            .sum::<Duration>()
            .div_f64(self.samples.len() as f64);
        println!("  {label:<40} min {min:>12.3?}   mean {mean:>12.3?}");
        record_json(label, *min, mean, self.samples.len());
    }
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A named set of related benchmarks sharing configuration.
///
/// Holds a mutable borrow of the parent [`Criterion`] (matching the
/// upstream signature, which keeps two groups from being open at
/// once) without reading it back: group configuration is scoped.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    /// Group header line, deferred until a benchmark survives the CLI
    /// filter so filtered-out groups stay silent.
    header_printed: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark. Scoped to this
    /// group, as upstream does — the parent `Criterion` is untouched.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted, unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `body` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut body: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        if !label_matches(&label, filter_arg()) {
            return self;
        }
        if !std::mem::replace(&mut self.header_printed, true) {
            println!("{}", self.name);
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        body(&mut b);
        b.report(&label);
        self
    }

    /// Benchmarks `body` with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut body: F,
    ) -> &mut Self {
        self.bench_function(id, |b| body(b, input))
    }

    /// Ends the group (upstream renders summary output here).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            header_printed: false,
        }
    }

    /// Benchmarks `body` under a flat name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) -> &mut Self {
        if !label_matches(name, filter_arg()) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        body(&mut b);
        b.report(name);
        self
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn label_filter_is_substring_match() {
        assert!(label_matches("group/bench", None));
        assert!(label_matches("group/bench", Some("bench")));
        assert!(label_matches("group/bench", Some("oup/be")));
        assert!(!label_matches("group/bench", Some("other")));
        assert!(!label_matches("group/bench", Some("benchx")));
    }

    #[test]
    fn json_snapshot_rendering() {
        let records = vec![
            JsonRecord {
                label: "ntt/forward/4096".into(),
                min_ns: 1234,
                mean_ns: 1300,
                samples: 20,
            },
            JsonRecord {
                label: "odd\"label\\".into(),
                min_ns: 1,
                mean_ns: 2,
                samples: 3,
            },
        ];
        let out = render_records(&records);
        assert!(out.contains("\"name\": \"ntt/forward/4096\", \"min_ns\": 1234"));
        assert!(out.contains("\"name\": \"odd\\\"label\\\\\""));
        assert!(out.ends_with("  ]\n}\n"));
        // Host metadata header: nproc, commit and backend stamped once.
        assert!(out.starts_with("{\n  \"meta\": {\"nproc\": "));
        for key in ["\"commit\": \"", "\"backend\": \""] {
            assert!(out.contains(key), "meta missing {key}");
        }
        // Exactly one record separator for two records, plus the one
        // after the meta object.
        assert_eq!(out.matches("},\n").count(), 2);
        // The last record carries no trailing comma.
        assert!(out.contains("\"samples\": 3}\n"));
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        group.finish();
    }
}
