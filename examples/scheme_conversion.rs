//! Scheme conversion: CKKS -> LWE -> CKKS round trip.
//!
//! Demonstrates the paper's Algorithms 3-5: coefficients of a CKKS
//! ciphertext are extracted into LWE ciphertexts (`SampleExtract`),
//! then repacked into a single RLWE ciphertext via ring embedding,
//! `PackLWEs` merges, and the field trace.
//!
//! Run with: `cargo run --release --example scheme_conversion`

use rand::SeedableRng;
use trinity::ckks::{CkksContext, CkksParams, Decryptor, Encryptor, KeyGenerator, Plaintext};
use trinity::convert::{extract_lwes, extracted_key, RlwePacker};
use trinity::math::{Representation, RnsPoly};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let n = ctx.n();
    println!("Ring degree N = {n}, conversion level = 1");

    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());

    // Messages live in the first nslot coefficients, headroom-scaled
    // (see fhe-convert docs: |m| * delta * N < q0 / 2).
    let nslot = 8usize;
    let q0 = ctx.level_basis(0).modulus(0).value();
    let delta = (q0 / (64 * n as u64)) as i64;
    let messages: Vec<i64> = (0..nslot as i64).map(|j| j - 4).collect();
    println!("messages = {messages:?} (encoded at delta = {delta})");

    let mut coeffs = vec![0i64; n];
    for (j, &m) in messages.iter().enumerate() {
        coeffs[j] = m * delta;
    }
    let mut poly = RnsPoly::from_signed_coeffs(ctx.level_basis(0).clone(), &coeffs);
    poly.to_eval();
    let pt = Plaintext {
        poly,
        scale: delta as f64,
        level: 0,
    };
    let ct = encryptor.encrypt_sk(&pt, &sk, &mut rng);

    // --- CKKS -> TFHE (Algorithm 3): one LWE per coefficient. ---
    let start = std::time::Instant::now();
    let lwes = extract_lwes(&ctx, &ct, nslot);
    println!(
        "\nExtracted {} LWE ciphertexts (dim {}) in {:.2?}",
        lwes.len(),
        lwes[0].dim(),
        start.elapsed()
    );
    let lwe_key = extracted_key(&sk);
    let q = ctx.level_basis(0).modulus(0);
    for (j, lwe) in lwes.iter().enumerate() {
        let got = (q.to_centered(lwe.phase(q, &lwe_key)) as f64 / delta as f64).round() as i64;
        assert_eq!(got, messages[j], "LWE {j}");
    }
    println!("Each LWE decrypts to its coefficient: ok");

    // --- TFHE -> CKKS (Algorithms 4+5): repack into one RLWE. ---
    let packer = RlwePacker::new(ctx.clone(), &sk, 1, &mut rng);
    let start = std::time::Instant::now();
    let packed = packer.convert(&lwes, delta as f64);
    println!(
        "\nRepacked {nslot} LWEs into one RLWE at level {} in {:.2?}",
        packed.level,
        start.elapsed()
    );
    println!(
        "  ({} keyswitched automorphisms: {} merges + {} trace steps)",
        trinity::workloads::repack_keyswitch_count(n, nslot),
        nslot - 1,
        (n / nslot).trailing_zeros()
    );

    let out = decryptor.decrypt_poly(&packed, &sk);
    let vals = out.to_centered_f64();
    let stride = n / nslot;
    println!("\ncoeff      packed value   expected");
    for (j, &m) in messages.iter().enumerate() {
        let got = vals[j * stride] / packed.scale;
        println!("{:>5}  {got:>16.4}  {m:>9}", j * stride);
        assert!((got - m as f64).abs() < 0.01);
    }
    // Non-aligned coefficients were annihilated by the field trace.
    let junk = vals
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride != 0)
        .map(|(_, v)| (v / packed.scale).abs())
        .fold(0.0f64, f64::max);
    println!("\nLargest non-aligned coefficient: {junk:.2e} (field trace kills junk)");
    assert!(junk < 0.01);
    let _ = Representation::Coeff;
    println!("Round trip CKKS -> LWE -> CKKS: ok");
}
