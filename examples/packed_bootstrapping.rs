//! Packed CKKS bootstrapping, end to end on real ciphertexts.
//!
//! Exhausts a ciphertext down to level 0, refreshes it through the full
//! ModRaise -> SubSum -> CoeffToSlot -> EvalMod -> SlotToCoeff
//! pipeline, and keeps computing on the result — the paper's "Packed
//! Bootstrapping" workload (Table VI), here at functional test scale.
//!
//! Run with: `cargo run --release --example packed_bootstrapping`

use std::time::Instant;

use rand::SeedableRng;
use trinity::ckks::bootstrap::bootstrap_test_params;
use trinity::ckks::{
    BootstrapParams, Bootstrapper, CkksContext, Decryptor, Encoder, Encryptor, Evaluator,
};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);

    let ctx = CkksContext::new(bootstrap_test_params());
    let boot_params = BootstrapParams::default();
    println!(
        "CKKS bootstrap context: N = {}, L = {}, scale = 2^{}, sparse slots = {}",
        ctx.n(),
        ctx.params().max_level(),
        ctx.params().scale_bits,
        boot_params.sparse_slots,
    );
    println!(
        "pipeline: C2S(1) + Chebyshev deg {} ({} lvls) + {} double-angle + S2C(1) = {} levels",
        boot_params.cheb_degree,
        trinity::ckks::chebyshev::chebyshev_depth(boot_params.cheb_degree),
        boot_params.double_angle,
        boot_params.depth(),
    );

    let boot = Bootstrapper::new(ctx.clone(), boot_params);
    let t0 = Instant::now();
    let keys = boot.generate_keys(&mut rng);
    println!(
        "generated {} Galois keys + relin key in {:.1?}",
        keys.galois.len(),
        t0.elapsed()
    );

    let enc = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let eval = Evaluator::new(ctx.clone());
    let dec = Decryptor::new(ctx.clone());

    // An n-periodic (sparsely packed) message, encrypted straight at
    // level 0 — no levels left to compute with.
    let n = boot.params().sparse_slots;
    let vals: Vec<f64> = (0..n)
        .map(|i| ((i * 37 + 11) % 19) as f64 / 19.0 - 0.5)
        .collect();
    let slots = ctx.n() / 2;
    let tiled: Vec<f64> = (0..slots).map(|j| vals[j % n]).collect();
    let exhausted = encryptor.encrypt_sk(&enc.encode_real(&tiled, 0), &keys.secret, &mut rng);
    println!("\nexhausted ciphertext: level {}", exhausted.level);

    let t1 = Instant::now();
    let fresh = boot.bootstrap(&exhausted, &eval, &enc, &keys);
    let boot_time = t1.elapsed();
    println!(
        "bootstrapped in {boot_time:.1?}: level {} -> {} (usable levels restored)",
        exhausted.level, fresh.level
    );

    let back = dec.decrypt(&fresh, &keys.secret, &enc);
    println!("\nslot  original    refreshed    |error|");
    let mut max_err = 0.0f64;
    for (i, &v) in vals.iter().enumerate() {
        let err = (back[i].re - v).abs();
        max_err = max_err.max(err);
        println!("{i:>4}  {v:>9.5}  {:>10.5}  {err:.2e}", back[i].re);
    }
    println!("max slot error: {max_err:.2e}");

    // Prove the levels are real: square the refreshed ciphertext twice.
    let sq = eval.rescale(&eval.mul(&fresh, &fresh, &keys.relin));
    let quad = eval.rescale(&eval.mul(&sq, &sq, &keys.relin));
    let out = dec.decrypt(&quad, &keys.secret, &enc);
    let worst = vals
        .iter()
        .enumerate()
        .map(|(i, &v)| (out[i].re - v.powi(4)).abs())
        .fold(0.0f64, f64::max);
    println!("\nx^4 on refreshed data: max error {worst:.2e} (two more levels consumed)");
}
