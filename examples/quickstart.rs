//! Quickstart: encrypted arithmetic with CKKS.
//!
//! Encrypts two vectors, computes `x*y + x` homomorphically, and
//! decrypts — the "arithmetic FHE" half of the Trinity paper.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use trinity::ckks::{
    CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator,
};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    // Small-but-real parameters: N = 2^12, a 5-prime RNS chain.
    let ctx = CkksContext::new(CkksParams::test_params());
    println!(
        "CKKS context: N = {}, L = {}, dnum = {}, scale = 2^{}",
        ctx.n(),
        ctx.params().max_level(),
        ctx.params().dnum,
        ctx.params().scale_bits
    );

    let keys = KeyGenerator::new(ctx.clone()).key_set(&[1], &mut rng);
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let evaluator = Evaluator::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());

    let x: Vec<f64> = (0..8).map(|i| (i as f64) / 10.0).collect();
    let y: Vec<f64> = (0..8).map(|i| 1.0 - (i as f64) / 10.0).collect();
    println!("x = {x:?}");
    println!("y = {y:?}");

    let level = ctx.params().max_level();
    let ct_x = encryptor.encrypt_pk(&encoder.encode_real(&x, level), &keys.public, &mut rng);
    let ct_y = encryptor.encrypt_pk(&encoder.encode_real(&y, level), &keys.public, &mut rng);

    // x * y (HMult + rescale) ...
    let prod = evaluator.rescale(&evaluator.mul(&ct_x, &ct_y, &keys.relin));
    // ... + x. Addition needs matching scales; after a rescale the
    // scale is Delta^2 / q_top, not Delta, so route x through the same
    // multiply-by-one + rescale to land on the identical scale.
    let one = encoder.encode_constant_at(1.0, level, ctx.params().scale());
    let ct_x_low = evaluator.rescale(&evaluator.mul_plain(&ct_x, &one));
    let sum = evaluator.add(&prod, &ct_x_low);

    let out = decryptor.decrypt(&sum, &keys.secret, &encoder);
    println!("\nslot  x*y + x (computed)   expected   |error|");
    for i in 0..8 {
        let expect = x[i] * y[i] + x[i];
        let got = out[i].re;
        println!(
            "{i:>4}  {got:>18.6}  {expect:>9.3}  {:.2e}",
            (got - expect).abs()
        );
        assert!((got - expect).abs() < 1e-2, "slot {i} error too large");
    }
    println!("\nAll slots within 1e-2 of the plaintext computation.");
}
