//! Drive the Trinity accelerator model directly: simulate CKKS
//! bootstrapping and a TFHE PBS batch, print latency, throughput and
//! per-component utilization, and compare against SHARP and Morphling.
//!
//! Run with: `cargo run --release --example accelerator_sim`

use trinity::accel::arch::AcceleratorConfig;
use trinity::accel::chip_budget;
use trinity::accel::kernel::KernelGraph;
use trinity::accel::mapping::{build_machine, MappingPolicy};
use trinity::accel::sched::simulate;
use trinity::workloads::{bootstrap, pbs_batch, CkksShape, TfheShape};

fn main() {
    // --- Machines ---
    let trinity_ckks = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::CkksAdaptive);
    let trinity_tfhe = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::TfheAdaptive);
    let sharp = build_machine(&AcceleratorConfig::sharp(), MappingPolicy::Baseline);
    let morphling = build_machine(&AcceleratorConfig::morphling(), MappingPolicy::Baseline);

    // --- CKKS bootstrapping at the paper's parameters. ---
    let shape = CkksShape::paper_default();
    println!(
        "CKKS packed bootstrapping (N = 2^16, L = {}, dnum = {}):",
        shape.levels, shape.dnum
    );
    let g = bootstrap(&shape);
    println!("  kernel DAG: {} kernels", g.len());
    let rt = simulate(&trinity_ckks, &g);
    let rs = simulate(&sharp, &g);
    println!(
        "  Trinity: {:.2} ms   SHARP: {:.2} ms   speedup {:.2}x (paper: 1.63x)",
        rt.time_ms,
        rs.time_ms,
        rs.time_ms / rt.time_ms
    );
    println!("  Trinity per-component utilization:");
    for comp in ["NTTU", "CU-1", "CU-2", "CU-3", "EWE", "AutoU"] {
        println!("    {comp:<6} {:>5.1}%", rt.mean_utilization(comp) * 100.0);
    }

    // A single keyswitch, small enough to read as a timeline.
    let mut ks = KernelGraph::new();
    trinity::workloads::ckks_ops::keyswitch(
        &mut ks,
        &shape,
        shape.levels,
        &[],
        trinity::workloads::KeySwitchOpts::default(),
    );
    let rk = simulate(&trinity_ckks, &ks);
    println!(
        "\n  One hybrid keyswitch ({} kernels, {} cycles) on cluster 0:",
        ks.len(),
        rk.total_cycles
    );
    for line in rk.timeline(&trinity_ckks, 64).lines() {
        if line.starts_with("c0.") || line.starts_with("HBM") {
            println!("    {line}");
        }
    }

    // --- TFHE PBS throughput. ---
    println!("\nTFHE programmable bootstrapping (batch of 64):");
    for (name, set) in TfheShape::paper_sets() {
        let mut g = KernelGraph::new();
        pbs_batch(&mut g, &set, 64);
        let rt = simulate(&trinity_tfhe, &g);
        let rm = simulate(&morphling, &g);
        println!(
            "  {name:<8} Trinity {:>8.0} OPS   Morphling {:>7.0} OPS   ratio {:.2}x (paper: ~4.2x)",
            rt.ops_per_second(64),
            rm.ops_per_second(64),
            rt.ops_per_second(64) / rm.ops_per_second(64)
        );
    }

    // --- Area/power roll-up (Table XI). ---
    let budget = chip_budget(&AcceleratorConfig::trinity());
    println!(
        "\nChip budget: {:.2} mm^2, {:.1} W (paper Table XI: 157.26 mm^2, 229.36 W)",
        budget.total.area_mm2, budget.total.power_w
    );
    println!(
        "Area vs SHARP+Morphling (178.8 + ~4.0 mm^2 at 7 nm): {:.0}% (paper: 85%)",
        budget.total.area_mm2 / (178.8 + 4.0) * 100.0
    );
}
