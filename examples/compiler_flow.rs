//! The Fig. 8 workload-allocation flow, end to end: an FHE program is
//! decomposed into a kernel flow, bootstraps are inserted where level
//! budgets run out, and the flow is scheduled on the Trinity machine
//! model — including co-scheduling two applications at once (§IV-K).
//!
//! Run with: `cargo run --release --example compiler_flow`

use trinity::accel::arch::AcceleratorConfig;
use trinity::accel::mapping::{build_machine, MappingPolicy};
use trinity::compiler::{compile, BootstrapPolicy, CompilerConfig, FheProgram};
use trinity::workloads::CkksShape;

fn main() {
    let config = CompilerConfig::paper_default();
    println!(
        "target: CKKS N = 2^16, L = {}, TFHE Set-I; bootstrap restores to level {}",
        config.ckks.levels, config.policy.restored_level
    );

    // --- A deep CKKS program that cannot fit its level budget ---------
    let mut deep = FheProgram::new();
    let x = deep.ckks_input(config.ckks.levels);
    let mut cur = x;
    for _ in 0..40 {
        let m = deep.hmult(cur, cur);
        cur = deep.rescale(m);
    }
    println!(
        "\nprogram A: 40 chained HMult+Rescale from level {}",
        config.ckks.levels
    );
    let compiled = compile(deep, &config);
    println!(
        "  compiler inserted {} bootstraps; {} FHE ops -> {} kernels",
        compiled.inserted_bootstraps,
        compiled.op_count,
        compiled.graph.len()
    );
    let machine = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::CkksAdaptive);
    let r = compiled.simulate(&machine);
    println!(
        "  scheduled on {}: {:.3} ms, NTTU utilization {:.1}%",
        machine.name,
        r.time_ms,
        r.mean_utilization("NTTU") * 100.0
    );

    // --- A hybrid program: TFHE filter -> conversion -> CKKS aggregate
    let mut hybrid = FheProgram::new();
    let rows = hybrid.tfhe_input();
    let flag = hybrid.pbs(rows);
    let packed = hybrid.tfhe_to_ckks(flag, 32);
    let weights = hybrid.ckks_input(20);
    let weighted = hybrid.hmult(packed, weights);
    let scaled = hybrid.rescale(weighted);
    let rot = hybrid.hrotate(scaled);
    let _sum = hybrid.hadd(scaled, rot);

    println!("\nprogram B: TFHE PBS -> repack(32) -> CKKS weighted aggregate");
    let compiled_b = compile(hybrid.clone(), &config);
    let hybrid_machine = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::Hybrid);
    let rb = compiled_b.simulate(&hybrid_machine);
    println!(
        "  {} kernels, {:.3} ms on {}",
        compiled_b.graph.len(),
        rb.time_ms,
        hybrid_machine.name
    );

    // --- Co-scheduling both programs on one machine (§IV-K) -----------
    let small = CompilerConfig {
        ckks: CkksShape {
            levels: 23,
            ..CkksShape::paper_default()
        },
        policy: BootstrapPolicy {
            min_level: 1,
            restored_level: 9,
        },
        ..config
    };
    let mut app_a = FheProgram::new();
    let mut cur = app_a.tfhe_input();
    for _ in 0..8 {
        cur = app_a.pbs(cur);
    }
    let t_a = compile(app_a.clone(), &small)
        .simulate(&hybrid_machine)
        .time_ms;
    let t_b = compile(hybrid.clone(), &small)
        .simulate(&hybrid_machine)
        .time_ms;
    let mut merged = app_a;
    merged.merge(&hybrid);
    let t_m = compile(merged, &small).simulate(&hybrid_machine).time_ms;
    println!("\nco-scheduling (SS IV-K): TFHE app {t_a:.3} ms, hybrid app {t_b:.3} ms");
    println!(
        "  serial {:.3} ms vs co-scheduled {:.3} ms ({:.1}% saved)",
        t_a + t_b,
        t_m,
        (1.0 - t_m / (t_a + t_b)) * 100.0
    );
}
