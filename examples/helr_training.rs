//! Encrypted logistic-regression training — the paper's HELR benchmark
//! (Table VI), run functionally on real ciphertexts.
//!
//! Each iteration computes `w <- w + (lr/m) * X^T (y - sigmoid(X w))`
//! entirely under CKKS: the mat-vecs are BSGS diagonal transforms
//! (`HRotate`-heavy, the workload that motivates Trinity's CU-based
//! inner-product offload) and the sigmoid is a low-depth Chebyshev
//! evaluation.
//!
//! Run with: `cargo run --release --example helr_training`

use std::collections::HashMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trinity::ckks::chebyshev::ChebyshevPoly;
use trinity::ckks::{
    CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator,
    LinearTransform,
};
use trinity::math::Complex;

/// Plain sigmoid for reference.
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn main() {
    let mut rng = StdRng::seed_from_u64(17);

    // A tiny linearly-separable problem: dim features, dim samples
    // (the square shape keeps both mat-vecs on one transform size).
    let dim = 8usize;
    let x_data: Vec<Vec<f64>> = (0..dim)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let true_w: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let labels: Vec<f64> = x_data
        .iter()
        .map(|row| {
            let dot: f64 = row.iter().zip(&true_w).map(|(a, b)| a * b).sum();
            if dot > 0.0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();

    // Depth per iteration: X w (1) + domain scale (1) + sigmoid (3) +
    // X^T r (1) + step scale (1) = 7 levels; two iterations fit L = 15.
    let params = CkksParams::new(1 << 12, 15, 40, 3).expect("valid params");
    let ctx = CkksContext::new(params);
    let enc = Encoder::new(ctx.clone());
    let eval = Evaluator::new(ctx.clone());
    let dec = Decryptor::new(ctx.clone());

    // X and X^T as diagonal-encoded transforms.
    let flat: Vec<Complex> = x_data
        .iter()
        .flat_map(|r| r.iter().map(|&v| Complex::new(v, 0.0)))
        .collect();
    let x_t: Vec<Complex> = (0..dim * dim)
        .map(|i| flat[(i % dim) * dim + i / dim])
        .collect();
    let lt_x = LinearTransform::from_matrix(&flat, dim);
    let lt_xt = LinearTransform::from_matrix(&x_t, dim);

    let mut rotations = lt_x.required_rotations();
    rotations.extend(lt_xt.required_rotations());
    let keys = KeyGenerator::new(ctx.clone()).key_set(&rotations, &mut rng);
    let encryptor = Encryptor::new(ctx.clone());

    // Degree-7 Chebyshev sigmoid on [-8, 8] (3 levels).
    let fit = ChebyshevPoly::fit(sigmoid, -8.0, 8.0, 7);
    println!(
        "sigmoid fit: degree {}, max error {:.1e} on [-8, 8]",
        fit.degree(),
        fit.max_error(sigmoid, 400)
    );

    // Encrypted state: weights start at zero; labels are a plaintext
    // operand here (they would be encrypted in the full protocol — the
    // circuit is identical).
    let slots = enc.slots();
    let tile = |v: &[f64]| -> Vec<f64> { (0..slots).map(|j| v[j % dim]).collect() };
    let l0 = ctx.params().max_level();
    let mut ct_w = encryptor.encrypt_sk(
        &enc.encode_real(&tile(&vec![0.0; dim]), l0),
        &keys.secret,
        &mut rng,
    );
    let lr = 1.0;

    let plain_acc = |w: &[f64]| -> usize {
        x_data
            .iter()
            .zip(&labels)
            .filter(|(row, &y)| {
                let p: f64 = row.iter().zip(w).map(|(a, b)| a * b).sum();
                (sigmoid(p) > 0.5) == (y > 0.5)
            })
            .count()
    };

    println!("\niter  levels  train-acc  max|w - w_plain|");
    let mut w_plain = vec![0.0f64; dim];
    let galois: &HashMap<u64, _> = &keys.galois;
    for it in 0..2 {
        let t = Instant::now();
        // Encrypted step.
        let xw = lt_x.apply_bsgs(&eval, &enc, &ct_w, galois, 4);
        // u = Xw scaled onto the Chebyshev domain [-1, 1].
        let scale_pt = enc.encode_constant_at(1.0 / 8.0, xw.level, ctx.params().scale());
        let u = eval.rescale(&eval.mul_plain(&xw, &scale_pt));
        let s = eval.eval_chebyshev(&u, &fit.coeffs, &keys.relin, &enc);
        // r = y - sigmoid(Xw).
        let y_pt = enc.encode_at_scale(
            &tile(&labels)
                .iter()
                .map(|&v| Complex::new(v, 0.0))
                .collect::<Vec<_>>(),
            s.level,
            s.scale,
        );
        let r = eval.negate(&eval.sub_plain(&s, &y_pt));
        // grad = X^T r; w += (lr/m) grad.
        let grad = lt_xt.apply_bsgs(&eval, &enc, &r, galois, 4);
        let step_pt = enc.encode_constant_at(lr / dim as f64, grad.level, ctx.params().scale());
        let step = eval.rescale(&eval.mul_plain(&grad, &step_pt));
        let w_low = eval.mod_down_to(&ct_w, step.level);
        // Align the tiny scale drift by re-encoding the step at w's scale.
        let mut step_aligned = step.clone();
        step_aligned.scale = w_low.scale; // |drift| < 1e-9 relative
        ct_w = eval.add(&w_low, &step_aligned);
        let dt = t.elapsed();

        // Plaintext reference step.
        let mut grad_plain = vec![0.0f64; dim];
        for (row, &y) in x_data.iter().zip(&labels) {
            let p: f64 = row.iter().zip(&w_plain).map(|(a, b)| a * b).sum();
            let r = y - sigmoid(p);
            for (g, &xi) in grad_plain.iter_mut().zip(row) {
                *g += r * xi;
            }
        }
        for (w, g) in w_plain.iter_mut().zip(&grad_plain) {
            *w += lr / dim as f64 * g;
        }

        let w_now = dec.decrypt(&ct_w, &keys.secret, &enc);
        let max_dev = (0..dim)
            .map(|i| (w_now[i].re - w_plain[i]).abs())
            .fold(0.0f64, f64::max);
        let acc = plain_acc(&w_plain);
        println!(
            "{it:>4}  {:>6}  {acc:>6}/{dim}   {max_dev:.2e}   ({dt:.1?})",
            ct_w.level
        );
    }

    let w_final = dec.decrypt(&ct_w, &keys.secret, &enc);
    let w_dec: Vec<f64> = (0..dim).map(|i| w_final[i].re).collect();
    println!(
        "\nencrypted-trained accuracy: {}/{dim} (plain reference {}/{dim})",
        plain_acc(&w_dec),
        plain_acc(&w_plain)
    );
}
