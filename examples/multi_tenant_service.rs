//! A multi-tenant FHE service run, end to end: four tenants (one TFHE
//! boolean tenant, three CKKS analytics tenants sharing a context)
//! submit a deterministic request stream through the QoS-laned job
//! queue. The service enforces the 20/30/50 lane budgets, coalesces
//! same-geometry keyswitches from different requests into single wide
//! kernel dispatches, and audits every decision as JSONL.
//!
//! Run with: `cargo run --release --example multi_tenant_service`

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use trinity::ckks::{
    CkksContext, CkksParams, Encoder, Encryptor, KeyGenerator, SecretKey, SwitchingKey,
};
use trinity::math::galois::rotation_galois_element;
use trinity::math::kernel;
use trinity::math::Complex;
use trinity::service::{Lane, Response, ServiceConfig, ServiceCore, Workload};
use trinity::tfhe::{ClientKey, GateOp, MulBackend, ServerKey, TfheContext, TfheParams};
use trinity::workloads::{stream, RequestKind, TrafficMix};

fn main() {
    // Run under the threaded backend so the worker pool's per-lane
    // dispatch attribution has fan-out to count. `select` pins the
    // process-wide backend before first use.
    let threaded = kernel::threaded(Some(3));
    kernel::select(threaded).expect("no kernel dispatched yet");

    // --- Tenants ---------------------------------------------------
    // Tenant 0: TFHE boolean gates (Set-I parameters, NTT externals).
    let mut rng = StdRng::seed_from_u64(77);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
    let server = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);

    // Tenants 1..=3: CKKS analytics over ONE shared context — that
    // shared geometry is what makes their rotations coalescable.
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let steps: Vec<i64> = (1..=4).flat_map(|m| [m, -m]).collect();
    let encoder = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let mut secrets: Vec<SecretKey> = Vec::new();
    let mut galois_sets: Vec<HashMap<i64, SwitchingKey>> = Vec::new();
    let mut inputs = Vec::new();
    for t in 0..3usize {
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let galois: HashMap<i64, SwitchingKey> = steps
            .iter()
            .map(|&r| {
                let g = rotation_galois_element(r, ctx.n());
                (r, kg.galois_key(&sk, g, &mut rng))
            })
            .collect();
        let values: Vec<Complex> = (0..encoder.slots())
            .map(|i| Complex::new((t * 100 + i) as f64, 0.0))
            .collect();
        let pt = encoder.encode(&values, ctx.params().max_level());
        inputs.push(encryptor.encrypt_sk(&pt, &sk, &mut rng));
        secrets.push(sk);
        galois_sets.push(galois);
    }

    // --- Service ---------------------------------------------------
    // max_in_flight = 2: the decision loop stays sequential and
    // deterministic, but independent dispatch groups execute
    // concurrently on scoped threads. The audit and every result are
    // bit-identical to a max_in_flight = 1 run by construction.
    let cfg = ServiceConfig {
        key_cache_bytes: 1 << 30,
        max_in_flight: 2,
        ..ServiceConfig::default_config()
    };
    println!(
        "service: lanes interactive/timed/bulk >= {}/{}/{}% of dispatches, \
         window {}, starvation threshold {} ticks, max batch {}, \
         max in-flight {}",
        cfg.budgets.interactive_min,
        cfg.budgets.timed_min,
        cfg.budgets.bulk_min,
        cfg.window,
        cfg.starvation.max_wait_ticks,
        cfg.max_batch,
        cfg.max_in_flight
    );
    let mut svc = ServiceCore::new(cfg).expect("valid budgets");
    svc.register_tfhe_tenant(0, server).expect("cache fits");
    for (t, galois) in galois_sets.iter().enumerate() {
        let bytes = svc
            .register_ckks_tenant(t + 1, ctx.clone(), galois.clone())
            .expect("cache fits");
        println!(
            "tenant {}: CKKS session resident ({} key bytes)",
            t + 1,
            bytes
        );
    }

    // --- Traffic ---------------------------------------------------
    // A deterministic 40-request stream; gates route to the TFHE
    // tenant, rotations round-robin over the CKKS tenants.
    let events = stream(42, 3, 40, TrafficMix::default_mix());
    let mut submitted = Vec::new();
    let mut plain_gates = Vec::new();
    for ev in &events {
        // Let the scheduler work while requests are still arriving —
        // at one dispatch per four arrival ticks, so the service runs
        // oversubscribed and backlogs (the coalescing opportunity)
        // actually build up.
        while svc.tick() * 4 < ev.arrival && svc.dispatch_next().is_some() {}
        match &ev.kind {
            RequestKind::Gate { gate, a, b } => {
                let op = GateOp::ALL[gate % GateOp::ALL.len()];
                plain_gates.push((submitted.len(), op.eval(*a, *b)));
                let id = svc
                    .submit(
                        0,
                        Workload::Gate {
                            op,
                            a: ck.encrypt_bit(*a, &mut rng),
                            b: ck.encrypt_bit(*b, &mut rng),
                        },
                    )
                    .expect("admitted");
                submitted.push(id);
            }
            RequestKind::TimedRotation { step, deadline } => {
                let t = ev.tenant % 3;
                let id = svc
                    .submit(
                        t + 1,
                        Workload::Rotation {
                            ct: inputs[t].clone(),
                            step: *step,
                            deadline: *deadline,
                        },
                    )
                    .expect("admitted");
                submitted.push(id);
            }
            RequestKind::BulkRotations { steps } => {
                let t = ev.tenant % 3;
                let id = svc
                    .submit(
                        t + 1,
                        Workload::Analytics {
                            ct: inputs[t].clone(),
                            steps: steps.clone(),
                        },
                    )
                    .expect("admitted");
                submitted.push(id);
            }
        }
    }
    svc.run_until_idle();

    // --- What happened ---------------------------------------------
    let jsonl = svc.audit().to_jsonl();
    let dispatches: Vec<(&str, usize)> = jsonl
        .lines()
        .filter(|l| l.contains("\"event\":\"dispatch\""))
        .map(|l| {
            let lane = if l.contains("\"lane\":\"interactive\"") {
                "interactive"
            } else if l.contains("\"lane\":\"timed\"") {
                "timed"
            } else {
                "bulk"
            };
            let at = l.find("\"jobs\":").unwrap() + 7;
            let jobs: usize = l[at..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap();
            (lane, jobs)
        })
        .collect();
    let total = dispatches.len();
    println!(
        "\n{} requests -> {} kernel dispatches over {} ticks",
        submitted.len(),
        total,
        svc.tick()
    );
    for lane in Lane::ALL {
        let of_lane: Vec<usize> = dispatches
            .iter()
            .filter(|(l, _)| *l == lane.name())
            .map(|&(_, jobs)| jobs)
            .collect();
        let jobs: usize = of_lane.iter().sum();
        println!(
            "  {:<11} {:>3} dispatches ({:>3}% of picks), {} jobs, widest batch {}",
            lane.name(),
            of_lane.len(),
            of_lane.len() * 100 / total.max(1),
            jobs,
            of_lane.iter().max().copied().unwrap_or(0)
        );
    }
    let coalesced = dispatches.iter().filter(|&&(_, jobs)| jobs >= 2).count();
    println!(
        "  {coalesced} dispatches carried >= 2 coalesced requests (cross-tenant keyswitch batching)"
    );
    // The oversubscribed pacing must actually build an Interactive
    // backlog: at least one dispatch batches >= 2 gates through a
    // single wide blind rotation. An assert, not a print — CI runs
    // this example, so a regression that silently stops batching fails
    // the build instead of cosmetically shrinking a stat line.
    let widest_gates = dispatches
        .iter()
        .filter(|(l, _)| *l == "interactive")
        .map(|&(_, jobs)| jobs)
        .max()
        .unwrap_or(0);
    assert!(
        widest_gates >= 2,
        "no Interactive dispatch batched >= 2 gates (widest {widest_gates})"
    );
    println!(
        "  worker-pool jobs by lane tag: interactive {}, timed {}, bulk {}",
        threaded.parallel_jobs_dispatched_by_tag(Lane::Interactive.dispatch_tag()),
        threaded.parallel_jobs_dispatched_by_tag(Lane::Timed.dispatch_tag()),
        threaded.parallel_jobs_dispatched_by_tag(Lane::Bulk.dispatch_tag()),
    );
    println!(
        "  worker-pool in-flight peaks by lane tag: interactive {}, timed {}, bulk {}",
        threaded.parallel_in_flight_peak_by_tag(Lane::Interactive.dispatch_tag()),
        threaded.parallel_in_flight_peak_by_tag(Lane::Timed.dispatch_tag()),
        threaded.parallel_in_flight_peak_by_tag(Lane::Bulk.dispatch_tag()),
    );
    println!(
        "  key cache: {} / {} bytes resident, {} evictions",
        svc.key_cache().used_bytes(),
        svc.key_cache().capacity_bytes(),
        svc.key_cache().evictions()
    );

    // Spot-check correctness: every gate decrypts to its plaintext
    // truth table entry.
    let mut checked = 0;
    for &(idx, expect) in &plain_gates {
        match svc.take_result(submitted[idx]) {
            Some(Response::Bit(ct)) => {
                assert_eq!(ck.decrypt_bit(&ct), expect, "gate result wrong");
                checked += 1;
            }
            _ => panic!("gate request returned no bit"),
        }
    }
    println!("\nverified {checked} gate results against plaintext truth tables");

    println!("\naudit tail (last 8 JSONL events):");
    let lines: Vec<&str> = jsonl.lines().collect();
    for l in &lines[lines.len().saturating_sub(8)..] {
        println!("  {l}");
    }
}
