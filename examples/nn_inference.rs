//! Encrypted neural-network inference over TFHE — the paper's NN-x
//! benchmark pattern (one programmable bootstrap per neuron), plus the
//! radix-integer filter ops the HE3DB workload builds on.
//!
//! Run with: `cargo run --release --example nn_inference`

use std::time::Instant;

use rand::SeedableRng;
use trinity::tfhe::{
    ClientKey, DiscreteMlp, MulBackend, RadixParams, ServerKey, SignLayer, TfheContext, TfheParams,
};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
    let t0 = Instant::now();
    let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
    println!(
        "TFHE Set-I server key (bsk: {} GGSWs) in {:.1?}",
        ck.ctx.params.n_lwe,
        t0.elapsed()
    );

    // --- Part 1: sign-network inference -------------------------------
    // A small pattern detector: odd fan-ins + zero biases keep every
    // pre-activation off the sign boundary.
    let net = DiscreteMlp::new(vec![
        SignLayer::new(
            vec![
                vec![1, 1, 1, -1, -1], // "starts high"
                vec![-1, -1, 1, 1, 1], // "ends high"
                vec![1, -1, 1, -1, 1], // "alternates"
            ],
            vec![0, 0, 0],
        ),
        SignLayer::new(vec![vec![1, 1, 1]], vec![0]),
    ]);
    println!(
        "\nsign network: depth {}, {} bootstraps per inference",
        net.depth(),
        net.bootstraps_per_inference()
    );

    for inputs in [
        vec![1i64, 1, 1, -1, -1],
        vec![-1, -1, -1, 1, 1],
        vec![1, -1, 1, -1, 1],
    ] {
        let cts = ck.encrypt_signs(&inputs, &net, &mut rng);
        let t = Instant::now();
        let out = sk.infer_mlp(&net, &cts);
        let dt = t.elapsed();
        let got = ck.decrypt_signs(&out);
        let want = net.infer_plain(&inputs);
        println!(
            "inputs {inputs:?} -> encrypted {got:?} / plain {want:?}  ({dt:.1?}) {}",
            if got == want { "ok" } else { "MISMATCH" }
        );
    }

    // --- Part 2: radix integers (the encrypted-database filter ops) ---
    let p = RadixParams::new(2, 3); // 6-bit integers
    println!(
        "\nradix integers: {} digits of {} bits (mod {})",
        p.num_digits,
        p.digit_bits,
        p.modulus()
    );

    let a = ck.encrypt_radix(23, p, &mut rng);
    let b = ck.encrypt_radix(18, p, &mut rng);

    let t = Instant::now();
    let sum = sk.radix_add(&a, &b);
    println!(
        "23 + 18 = {}  ({:.1?})",
        ck.decrypt_radix(&sum),
        t.elapsed()
    );

    let t = Instant::now();
    let doubled = sk.radix_scalar_mul(&a, 2);
    println!(
        "23 * 2  = {}  ({:.1?})",
        ck.decrypt_radix(&doubled),
        t.elapsed()
    );

    let t = Instant::now();
    let lt = sk.radix_lt(&b, &a);
    println!("18 < 23 = {}  ({:.1?})", ck.decrypt_bit(&lt), t.elapsed());

    let t = Instant::now();
    let hit = sk.radix_lt_scalar(&a, 32);
    println!("23 < 32 = {}  ({:.1?})", ck.decrypt_bit(&hit), t.elapsed());
}
