//! Logic FHE: an encrypted 4-bit adder built from bootstrapped gates.
//!
//! Every gate is one programmable bootstrap (the paper's Algorithm 2)
//! over the NTT backend — the "logic FHE" half of Trinity.
//!
//! Run with: `cargo run --release --example tfhe_gates`

use rand::SeedableRng;
use trinity::tfhe::{ClientKey, LweCiphertext, MulBackend, ServerKey, TfheContext, TfheParams};

fn encrypt_nibble(ck: &ClientKey, v: u8, rng: &mut impl rand::Rng) -> Vec<LweCiphertext> {
    (0..4)
        .map(|i| ck.encrypt_bit((v >> i) & 1 == 1, rng))
        .collect()
}

fn decrypt_bits(ck: &ClientKey, bits: &[LweCiphertext]) -> u8 {
    bits.iter()
        .enumerate()
        .map(|(i, b)| (ck.decrypt_bit(b) as u8) << i)
        .sum()
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let params = TfheParams::set_i();
    println!(
        "TFHE {}: N = {}, n_lwe = {}, k = {}, lb = {} (paper Table IV)",
        params.name, params.n, params.n_lwe, params.k, params.lb
    );
    println!("Polynomial multiplier: exact NTT over the prime nearest 2^32");

    let ck = ClientKey::generate(TfheContext::new(params), &mut rng);
    let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);

    let (x, y) = (11u8, 6u8);
    println!("\nComputing {x} + {y} on encrypted bits (ripple-carry adder)...");
    let a = encrypt_nibble(&ck, x, &mut rng);
    let b = encrypt_nibble(&ck, y, &mut rng);

    let start = std::time::Instant::now();
    let mut carry = ck.encrypt_bit(false, &mut rng);
    let mut sum_bits = Vec::new();
    let mut gates = 0usize;
    for i in 0..4 {
        // Full adder: s = a ^ b ^ cin; cout = (a&b) | ((a^b)&cin).
        let ab = sk.xor(&a[i], &b[i]);
        let s = sk.xor(&ab, &carry);
        let c1 = sk.and(&a[i], &b[i]);
        let c2 = sk.and(&ab, &carry);
        carry = sk.or(&c1, &c2);
        gates += 5;
        sum_bits.push(s);
    }
    sum_bits.push(carry);
    let elapsed = start.elapsed();

    let result = decrypt_bits(&ck, &sum_bits);
    println!("Encrypted result: {result} (expected {})", x + y);
    assert_eq!(result, x + y);
    println!(
        "{gates} bootstrapped gates in {:.2?} ({:.1} ms/gate on this CPU; \
         Trinity's modeled throughput is ~600k gates/s)",
        elapsed,
        elapsed.as_secs_f64() * 1e3 / gates as f64
    );

    // Bonus: an encrypted 2-bit comparator via MUX.
    println!("\nEncrypted MUX: sel ? x : y for all sel values");
    for sel in [false, true] {
        let cs = ck.encrypt_bit(sel, &mut rng);
        let out = sk.mux(&cs, &a[0], &b[0]);
        let expect = if sel { x & 1 == 1 } else { y & 1 == 1 };
        assert_eq!(ck.decrypt_bit(&out), expect);
        println!("  sel={sel}: ok");
    }
}
