//! Hybrid encrypted database query — the workload class that motivates
//! Trinity (paper §III-A, Table X's HE3DB benchmark).
//!
//! An encrypted product table is filtered with TFHE (logic FHE: one
//! programmable bootstrap per row evaluates the predicate), the filter
//! counts are aggregated in the LWE domain, keyswitched onto the CKKS
//! secret, converted into the CKKS ring (scheme conversion, Algorithm 5's
//! ring embedding), and combined homomorphically in CKKS (arithmetic
//! FHE) before a single decryption.
//!
//! Run with: `cargo run --release --example encrypted_db`

use rand::SeedableRng;
use trinity::ckks::{CkksContext, CkksParams, Decryptor, Evaluator, KeyGenerator};
use trinity::convert::{extracted_key, lwe_mod_switch, RlwePacker};
use trinity::tfhe::{
    ClientKey, LweCiphertext, LweKeySwitchKey, MulBackend, ServerKey, TfheContext, TfheParams,
};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);

    // --- The encrypted table: 8 rows of (price, quantity in [0,16)). ---
    let prices = [12u64, 3, 8, 15, 6, 9, 1, 11];
    let quantities = [5u64, 14, 2, 9, 13, 7, 15, 4];
    let price_threshold = 9u64; // predicate A: price < 9
    let qty_threshold = 8u64; // predicate B: quantity >= 8
    println!("TPC-H-style query over an encrypted 8-row table:");
    println!("  SELECT count(price < {price_threshold}), count(quantity >= {qty_threshold})");
    println!("  prices     = {prices:?}");
    println!("  quantities = {quantities:?}\n");

    // --- TFHE side: per-row predicate evaluation via LUT bootstraps. ---
    // Set-III (128-bit, N = 2048): its finer gadget decomposition keeps
    // the bootstrap output noise far below the filter-bit scale, so the
    // aggregated count decodes exactly.
    let tfhe_params = TfheParams::set_iii();
    let ck = ClientKey::generate(TfheContext::new(tfhe_params), &mut rng);
    let sk_server = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
    let q_tfhe = *ck.ctx.q();
    let t = 16u64; // message space
                   // Filter bits are emitted at a small scale so the aggregated count
                   // survives the scheme conversion's headroom requirements.
    let delta = q_tfhe.value() / 32;

    let filter = |col: &[u64], pred: &dyn Fn(u64) -> bool, rng: &mut rand::rngs::StdRng| {
        // Predicate bootstrap: +delta when the predicate holds, -delta
        // otherwise. The filter bits stay under the *extracted* GLWE key
        // (dim k*N): conversion pipelines aggregate and convert before
        // the noisy TFHE keyswitch, exactly as HE3DB does.
        let bits: Vec<LweCiphertext> = col
            .iter()
            .map(|&v| {
                let ct = ck.encrypt_message(v, t, rng);
                sk_server.bootstrap_predicate_unswitched(&ct, t, pred, delta)
            })
            .collect();
        bits
    };

    let start = std::time::Instant::now();
    let bits_a = filter(&prices, &|m| m < price_threshold, &mut rng);
    let bits_b = filter(&quantities, &|m| m >= qty_threshold, &mut rng);
    println!(
        "TFHE filter: {} programmable bootstraps in {:.2?}",
        prices.len() * 2,
        start.elapsed()
    );

    // --- Aggregate in the LWE domain: count = sum of (+/- delta) bits. ---
    let aggregate = |bits: &[LweCiphertext]| {
        let mut acc = LweCiphertext::trivial(bits[0].dim(), 0);
        for b in bits {
            acc.add_assign(&q_tfhe, b);
        }
        acc
    };
    let count_a = aggregate(&bits_a); // encodes (2*matches - rows) * delta
    let count_b = aggregate(&bits_b);

    // --- Scheme conversion: TFHE LWE -> CKKS RLWE. ---
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let kg = KeyGenerator::new(ctx.clone());
    let ckks_sk = kg.secret_key(&mut rng);
    let ckks_lwe_key = extracted_key(&ckks_sk);
    let q0 = *ctx.level_basis(0).modulus(0);

    // Cross-scheme LWE keyswitch: TFHE's *extracted* GLWE secret (the
    // key the unswitched bootstrap outputs live under) -> CKKS
    // coefficient key, generated at the CKKS prime q0 with a fine
    // decomposition and low noise.
    let tfhe_extracted = ck.glwe_sk.extracted_lwe_key();
    let cross_ksk =
        LweKeySwitchKey::generate(&q0, &tfhe_extracted, &ckks_lwe_key, 2, 16, 1e-9, &mut rng);
    let packer = RlwePacker::new(ctx.clone(), &ckks_sk, 1, &mut rng);

    let start = std::time::Instant::now();
    let convert = |count: &LweCiphertext| {
        let at_q0 = lwe_mod_switch(count, &q_tfhe, &q0);
        let under_ckks = cross_ksk.switch(&q0, &at_q0);
        // Ring-embed: the count lands in coefficient 0 of an RLWE
        // ciphertext at the packing level (scale tracks q0-relative
        // delta through the modulus raise).
        let delta_q0 = delta as f64 * q0.value() as f64 / q_tfhe.value() as f64;
        packer.ring_embed(&under_ckks, delta_q0)
    };
    let rlwe_a = convert(&count_a);
    let rlwe_b = convert(&count_b);
    println!(
        "Scheme conversion (mod switch + cross keyswitch + ring embed): {:.2?}",
        start.elapsed()
    );

    // --- CKKS side: homomorphic combination of the two aggregates. ---
    let eval = Evaluator::new(ctx.clone());
    let combined = eval.add(&rlwe_a, &rlwe_b);

    // --- Decrypt once, decode both counts. ---
    let dec = Decryptor::new(ctx.clone());
    let decode = |ct: &trinity::ckks::Ciphertext| -> i64 {
        let poly = dec.decrypt_poly(ct, &ckks_sk);
        let raw = poly.to_centered_f64()[0] / ct.scale;
        // raw = 2*matches - rows.
        ((raw + prices.len() as f64) / 2.0).round() as i64
    };
    let got_a = decode(&rlwe_a);
    let got_b = decode(&rlwe_b);
    let expect_a = prices.iter().filter(|&&p| p < price_threshold).count() as i64;
    let expect_b = quantities.iter().filter(|&&q| q >= qty_threshold).count() as i64;
    println!("\ncount(price < {price_threshold}):    computed {got_a}, expected {expect_a}");
    println!("count(quantity >= {qty_threshold}): computed {got_b}, expected {expect_b}");
    assert_eq!(got_a, expect_a);
    assert_eq!(got_b, expect_b);

    // The CKKS-combined ciphertext holds the sum of both raw counts.
    let poly = dec.decrypt_poly(&combined, &ckks_sk);
    let raw = poly.to_centered_f64()[0] / combined.scale;
    let both = ((raw + 2.0 * prices.len() as f64) / 2.0).round() as i64;
    println!("homomorphic sum of both counts (CKKS add after conversion): {both}");
    assert_eq!(both, expect_a + expect_b);

    println!("\nHybrid TFHE -> conversion -> CKKS query: all results correct.");
    println!(
        "(On Trinity this whole pipeline runs on one chip; Table X models the\n two-chip SHARP+Morphling alternative at >10x the latency.)"
    );
}
