//! Integration tests for the extension layers: functional CKKS
//! bootstrapping, TFHE radix integers and NN inference, and the Fig. 8
//! compiler — all exercised through the facade crate the way a
//! downstream user would.

use rand::rngs::StdRng;
use rand::SeedableRng;
use trinity::ckks::bootstrap::bootstrap_test_params;
use trinity::ckks::{
    BootstrapParams, Bootstrapper, CkksContext, Decryptor, Encoder, Encryptor, Evaluator,
};
use trinity::compiler::{compile, CompilerConfig, FheProgram};
use trinity::tfhe::{ClientKey, MulBackend, RadixParams, ServerKey, TfheContext, TfheParams};

/// Bootstrap an exhausted ciphertext, then keep computing on it: a
/// degree-3 polynomial evaluated on the refreshed slots. This is the
/// whole point of bootstrapping — the refreshed ciphertext must be a
/// first-class citizen of the evaluator.
#[test]
fn bootstrap_then_keep_computing() {
    let ctx = CkksContext::new(bootstrap_test_params());
    let boot = Bootstrapper::new(ctx.clone(), BootstrapParams::default());
    let mut rng = StdRng::seed_from_u64(7001);
    let keys = boot.generate_keys(&mut rng);
    let enc = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let eval = Evaluator::new(ctx.clone());
    let dec = Decryptor::new(ctx.clone());

    let n = boot.params().sparse_slots;
    let vals = [0.3, -0.5, 0.7, 0.2, -0.8, 0.6, -0.1, 0.4];
    assert_eq!(vals.len(), n);
    let slots = ctx.n() / 2;
    let tiled: Vec<f64> = (0..slots).map(|j| vals[j % n]).collect();
    let exhausted = encryptor.encrypt_sk(&enc.encode_real(&tiled, 0), &keys.secret, &mut rng);
    assert_eq!(exhausted.level, 0, "start from a spent ciphertext");

    let fresh = boot.bootstrap(&exhausted, &eval, &enc, &keys);
    assert!(fresh.level >= 3, "need levels for the polynomial");

    // p(x) = 0.5 + x - 0.25 x^3 on the refreshed data.
    let coeffs = [0.5, 1.0, 0.0, -0.25];
    let out_ct = eval.eval_poly_horner(&fresh, &coeffs, &keys.relin, &enc);
    let out = dec.decrypt(&out_ct, &keys.secret, &enc);
    for (i, &v) in vals.iter().enumerate() {
        let expect = 0.5 + v - 0.25 * v * v * v;
        assert!(
            (out[i].re - expect).abs() < 5e-2,
            "slot {i}: {} vs {expect}",
            out[i].re
        );
    }
}

/// The HE3DB WHERE-clause pattern over encrypted integers: two radix
/// threshold comparisons combined with a boolean AND, all under TFHE.
#[test]
fn radix_filter_conjunction() {
    let mut rng = StdRng::seed_from_u64(7002);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
    let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
    let p = RadixParams::new(2, 2); // values 0..16

    // WHERE price < 10 AND quantity < 8
    for (price, qty) in [(5u128, 3u128), (12, 3), (5, 9), (12, 9)] {
        let ct_price = ck.encrypt_radix(price, p, &mut rng);
        let ct_qty = ck.encrypt_radix(qty, p, &mut rng);
        let c1 = sk.radix_lt_scalar(&ct_price, 10);
        let c2 = sk.radix_lt_scalar(&ct_qty, 8);
        let hit = sk.and(&c1, &c2);
        assert_eq!(
            ck.decrypt_bit(&hit),
            price < 10 && qty < 8,
            "price={price} qty={qty}"
        );
    }
}

/// Encrypted aggregation over filtered rows: radix accumulate with the
/// plaintext-weighted sum pattern the paper's hybrid benchmark uses
/// before conversion.
#[test]
fn radix_arithmetic_chains() {
    let mut rng = StdRng::seed_from_u64(7003);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
    let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
    let p = RadixParams::new(2, 3); // mod 64

    // (3 * a + b) + 7 over encrypted a, b.
    let a = ck.encrypt_radix(9, p, &mut rng);
    let b = ck.encrypt_radix(20, p, &mut rng);
    let scaled = sk.radix_scalar_mul(&a, 3);
    let sum = sk.radix_add(&scaled, &b);
    let out = sk.radix_scalar_add(&sum, 7);
    // 3*9 + 20 + 7 = 54, within the 2^6 radix width (no wrap).
    assert_eq!(ck.decrypt_radix(&out), 54);
}

/// Encrypted NN inference through the facade: a two-layer sign network
/// agrees with its plaintext reference on several inputs.
#[test]
fn nn_inference_matches_plain_reference() {
    use trinity::tfhe::{DiscreteMlp, SignLayer};
    let mut rng = StdRng::seed_from_u64(7004);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
    let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
    // Odd fan-ins with zero biases: every pre-activation is an odd sum
    // of ±1 terms, so no input can hit the sign boundary.
    let net = DiscreteMlp::new(vec![
        SignLayer::new(
            vec![
                vec![1, -1, 1, 1, -1],
                vec![-1, 1, 1, -1, 1],
                vec![1, 1, -1, 1, 1],
            ],
            vec![0, 0, 0],
        ),
        SignLayer::new(vec![vec![1, 1, -1], vec![-1, 1, 1]], vec![0, 0]),
    ]);

    for trial in [0usize, 9, 21] {
        let inputs: Vec<i64> = (0..5)
            .map(|k| if (trial >> k) & 1 == 1 { 1 } else { -1 })
            .collect();
        assert!(!net.has_boundary_preactivation(&inputs));
        let cts = ck.encrypt_signs(&inputs, &net, &mut rng);
        let out = sk.infer_mlp(&net, &cts);
        assert_eq!(
            ck.decrypt_signs(&out),
            net.infer_plain(&inputs),
            "inputs {inputs:?}"
        );
    }
}

/// The compiler pipeline at the facade level: an HE3DB-like hybrid
/// program compiles, gets scheduled on the hybrid Trinity machine, and
/// the modeled latency beats the same flow on a machine the size of
/// Morphling (which must emulate CKKS kernels it has no units for —
/// the system-complexity argument of the paper's introduction).
#[test]
fn compiled_hybrid_program_runs() {
    use trinity::accel::arch::AcceleratorConfig;
    use trinity::accel::mapping::{build_machine, MappingPolicy};

    let mut p = FheProgram::new();
    let rows = p.tfhe_input();
    let filtered = p.pbs(rows);
    let packed = p.tfhe_to_ckks(filtered, 32);
    let weights = p.ckks_input(20);
    let weighted = p.hmult(packed, weights);
    let scaled = p.rescale(weighted);
    let rot = p.hrotate(scaled);
    let _total = p.hadd(scaled, rot);

    let compiled = compile(p, &CompilerConfig::paper_default());
    assert_eq!(compiled.inserted_bootstraps, 0);

    let trinity = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::Hybrid);
    let r = compiled.simulate(&trinity);
    assert!(r.total_cycles > 0);
    // Both schemes' kernel classes actually ran.
    assert!(r.mean_utilization("NTTU") > 0.0);
    assert!(*r.component_busy.get("HBM").unwrap_or(&0) > 0);
}

/// The complete CKKS -> TFHE direction (Algorithm 3) consumed by an
/// actual TFHE bootstrap: boolean flags packed in a CKKS ciphertext are
/// sample-extracted, modulus-switched onto the TFHE torus, keyswitched
/// to the small TFHE key, and refreshed by a sign bootstrap — the
/// filter-decision flow the paper's hybrid applications run.
#[test]
fn ckks_to_tfhe_then_bootstrap() {
    use trinity::ckks::{CkksParams, Plaintext};
    use trinity::convert::{extract_lwes, extracted_key, lwe_mod_switch};
    use trinity::math::RnsPoly;
    use trinity::tfhe::LweKeySwitchKey;

    let mut rng = StdRng::seed_from_u64(7005);

    // CKKS side: pack boolean flags as +/- q0/8 coefficients (the
    // bit encoding TFHE's sign bootstrap expects, scaled to q0).
    let ckks_ctx = trinity::ckks::CkksContext::new(CkksParams::tiny_params());
    let ckks_kg = trinity::ckks::KeyGenerator::new(ckks_ctx.clone());
    let ckks_sk = ckks_kg.secret_key(&mut rng);
    let encryptor = trinity::ckks::Encryptor::new(ckks_ctx.clone());
    let q0 = *ckks_ctx.level_basis(0).modulus(0);
    let flags = [true, false, true, true];
    let mut coeffs = vec![0i64; ckks_ctx.n()];
    for (j, &f) in flags.iter().enumerate() {
        coeffs[j] = if f { 1 } else { -1 } * (q0.value() / 8) as i64;
    }
    let mut poly = RnsPoly::from_signed_coeffs(ckks_ctx.level_basis(0).clone(), &coeffs);
    poly.to_eval();
    let pt = Plaintext {
        poly,
        scale: (q0.value() / 8) as f64,
        level: 0,
    };
    let ct = encryptor.encrypt_sk(&pt, &ckks_sk, &mut rng);

    // Conversion: extract, switch to the TFHE modulus, keyswitch down
    // to the small TFHE key.
    let tfhe_ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
    let tfhe_sk = ServerKey::generate(&tfhe_ck, MulBackend::Ntt, &mut rng);
    let q_tfhe = tfhe_ck.ctx.q();
    let big_key = extracted_key(&ckks_sk); // dimension N, mod q0
    let ksk = LweKeySwitchKey::generate(
        q_tfhe,
        &big_key,
        &tfhe_ck.lwe_sk,
        4,
        8,
        tfhe_ck.ctx.params.lwe_noise,
        &mut rng,
    );

    let lwes = extract_lwes(&ckks_ctx, &ct, flags.len());
    for (j, &flag) in flags.iter().enumerate() {
        let switched = lwe_mod_switch(&lwes[j], &q0, q_tfhe);
        let small = ksk.switch(q_tfhe, &switched);
        // Refresh through a genuine TFHE bootstrap and decrypt.
        let fresh = tfhe_sk.bootstrap_sign(&small);
        assert_eq!(tfhe_ck.decrypt_bit(&fresh), flag, "flag {j}");
    }
}
