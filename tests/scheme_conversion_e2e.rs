//! Deterministic-seed end-to-end scheme-conversion test.
//!
//! Drives the full paper pipeline — CKKS encrypt, `SampleExtract`
//! (Algorithm 3), `PackLWEs` + field trace (Algorithms 4–5), CKKS
//! decrypt — from fixed seeds, and asserts quantitative decryption
//! error bounds at each stage. Unlike the property tests this fixes
//! every seed, so a numerical regression shows up as an exact,
//! reproducible failure rather than a flaky one.

use rand::SeedableRng;
use trinity::ckks::{CkksContext, CkksParams, Decryptor, Encryptor, KeyGenerator, Plaintext};
use trinity::convert::{extract_lwes, extracted_key, RlwePacker};
use trinity::math::RnsPoly;

/// Messages must survive with error below this fraction of one
/// message unit (the example uses 0.01; we run several seeds and keep
/// the same bound).
const ERROR_BOUND: f64 = 0.01;

struct RoundTrip {
    /// Worst |decoded - message| over the extracted LWEs, in units.
    lwe_error: f64,
    /// Worst |decoded - message| over the packed slots, in units.
    packed_error: f64,
    /// Largest non-aligned coefficient after the field trace, in units.
    junk: f64,
}

fn round_trip(seed: u64, nslot: usize) -> RoundTrip {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let n = ctx.n();
    assert!(nslot.is_power_of_two() && nslot <= n);

    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let encryptor = Encryptor::new(ctx.clone());
    let decryptor = Decryptor::new(ctx.clone());

    // Headroom-scaled coefficient encoding: |m| * delta * N < q0 / 2.
    let q0 = ctx.level_basis(0).modulus(0);
    let delta = (q0.value() / (64 * n as u64)) as i64;
    let messages: Vec<i64> = (0..nslot as i64).map(|j| (j % 15) - 7).collect();

    let mut coeffs = vec![0i64; n];
    for (j, &m) in messages.iter().enumerate() {
        coeffs[j] = m * delta;
    }
    let mut poly = RnsPoly::from_signed_coeffs(ctx.level_basis(0).clone(), &coeffs);
    poly.to_eval();
    let pt = Plaintext {
        poly,
        scale: delta as f64,
        level: 0,
    };
    let ct = encryptor.encrypt_sk(&pt, &sk, &mut rng);

    // CKKS -> LWE (Algorithm 3).
    let lwes = extract_lwes(&ctx, &ct, nslot);
    assert_eq!(lwes.len(), nslot);
    let lwe_key = extracted_key(&sk);
    let lwe_error = lwes
        .iter()
        .zip(&messages)
        .map(|(lwe, &m)| {
            let got = q0.to_centered(lwe.phase(q0, &lwe_key)) as f64 / delta as f64;
            (got - m as f64).abs()
        })
        .fold(0.0f64, f64::max);

    // LWE -> CKKS (Algorithms 4-5).
    let packer = RlwePacker::new(ctx.clone(), &sk, 1, &mut rng);
    let packed = packer.convert(&lwes, delta as f64);
    let vals = decryptor.decrypt_poly(&packed, &sk).to_centered_f64();
    let stride = n / nslot;
    let packed_error = messages
        .iter()
        .enumerate()
        .map(|(j, &m)| (vals[j * stride] / packed.scale - m as f64).abs())
        .fold(0.0f64, f64::max);
    let junk = vals
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride != 0)
        .map(|(_, v)| (v / packed.scale).abs())
        .fold(0.0f64, f64::max);

    RoundTrip {
        lwe_error,
        packed_error,
        junk,
    }
}

#[test]
fn conversion_round_trip_error_bounds_hold_across_seeds() {
    for seed in [3u64, 601, 0xDEC0DE] {
        let r = round_trip(seed, 8);
        assert!(
            r.lwe_error < 0.5,
            "seed {seed}: extracted LWE off by {} units — rounding would flip",
            r.lwe_error
        );
        assert!(
            r.packed_error < ERROR_BOUND,
            "seed {seed}: packed slot error {} exceeds {ERROR_BOUND}",
            r.packed_error
        );
        assert!(
            r.junk < ERROR_BOUND,
            "seed {seed}: field trace left junk of {} units",
            r.junk
        );
    }
}

#[test]
fn conversion_error_bounds_hold_across_batch_sizes() {
    for nslot in [1usize, 2, 4, 16] {
        let r = round_trip(42, nslot);
        assert!(
            r.packed_error < ERROR_BOUND && r.junk < ERROR_BOUND,
            "nslot {nslot}: packed error {} junk {}",
            r.packed_error,
            r.junk
        );
    }
}

/// The same seed must produce bit-identical outcomes run to run — the
/// determinism the accelerator-model comparisons rely on.
#[test]
fn conversion_is_deterministic_per_seed() {
    let a = round_trip(7, 4);
    let b = round_trip(7, 4);
    assert_eq!(a.lwe_error.to_bits(), b.lwe_error.to_bits());
    assert_eq!(a.packed_error.to_bits(), b.packed_error.to_bits());
    assert_eq!(a.junk.to_bits(), b.junk.to_bits());
}
