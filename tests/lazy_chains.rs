//! Cross-kernel lazy residue chains, verified against the strict oracle.
//!
//! PR 2 made each NTT internally lazy but canonicalised on every
//! transform exit; the chained hot paths now keep `[0, 2p)` residues
//! *across* kernels (digit NTT → inner product → iNTT in keyswitch, the
//! HMult tensor, the TFHE external-product accumulator) and fold once
//! at ciphertext boundaries. This suite is the safety harness for that
//! change:
//!
//! * every lazy chain must be **bit-identical** (after canonicalisation)
//!   to the strict fully-reduced oracle, across every workspace modulus
//!   shape — CKKS `tiny`/`test`/`bootstrap` parameter sets and TFHE
//!   Sets I–III;
//! * the [`ReductionState`] transitions must be exactly the documented
//!   ones (`Canonical → Lazy2p → Canonical`, never silently through a
//!   strict kernel — the debug-assert domain checks fire under this
//!   test profile, which keeps `debug-assertions = true`);
//! * deterministic-seed noise regressions: measured noise through lazy
//!   keyswitch/rescale chains must equal the strict path **exactly**
//!   and stay within the `ckks::noise` estimator band.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trinity::ckks::bootstrap::bootstrap_test_params;
use trinity::ckks::{
    key_switch, key_switch_per_kernel, key_switch_strict, CkksContext, CkksParams, Decryptor,
    Encoder, Encryptor, Evaluator, KeyGenerator, KeySet, NoiseModel,
};
use trinity::math::{sampler, ReductionState, Representation, RnsPoly};
use trinity::tfhe::{Ggsw, GlweCiphertext, GlweSecretKey, MulBackend, TfheParams, TfheRing};

// ---------------------------------------------------------------------
// Shared fixtures (the build machine has one CPU: pay keygen once per
// modulus shape, not once per test).
// ---------------------------------------------------------------------

struct CkksFixture {
    ctx: Arc<CkksContext>,
    keys: KeySet,
}

fn ckks_fixture(
    cell: &'static OnceLock<CkksFixture>,
    params: CkksParams,
    seed: u64,
) -> &'static CkksFixture {
    cell.get_or_init(|| {
        let ctx = CkksContext::new(params);
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = KeyGenerator::new(ctx.clone()).key_set(&[1], &mut rng);
        CkksFixture { ctx, keys }
    })
}

fn tiny() -> &'static CkksFixture {
    static F: OnceLock<CkksFixture> = OnceLock::new();
    ckks_fixture(&F, CkksParams::tiny_params(), 0xA11CE)
}

fn test_shape() -> &'static CkksFixture {
    static F: OnceLock<CkksFixture> = OnceLock::new();
    ckks_fixture(&F, CkksParams::test_params(), 0xB0B)
}

fn bootstrap_shape() -> &'static CkksFixture {
    static F: OnceLock<CkksFixture> = OnceLock::new();
    ckks_fixture(&F, bootstrap_test_params(), 0xC0FFEE)
}

/// All CKKS modulus shapes in the workspace: (name, fixture).
fn all_ckks_shapes() -> Vec<(&'static str, &'static CkksFixture)> {
    vec![
        ("tiny", tiny()),
        ("test", test_shape()),
        ("bootstrap", bootstrap_shape()),
    ]
}

/// A uniform random polynomial over the level-`l` basis, in eval form.
fn random_eval_poly(ctx: &Arc<CkksContext>, level: usize, rng: &mut StdRng) -> RnsPoly {
    let basis = ctx.level_basis(level).clone();
    let mut flat = Vec::with_capacity(basis.len() * ctx.n());
    for m in basis.moduli() {
        flat.extend(sampler::uniform_residues(rng, m, ctx.n()));
    }
    RnsPoly::from_flat(basis, flat, Representation::Eval)
}

// ---------------------------------------------------------------------
// Keyswitch: lazy chain == strict oracle, bit for bit.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn lazy_keyswitch_is_bit_identical_to_strict_oracle(seed in any::<u64>()) {
        for (name, f) in all_ckks_shapes() {
            let mut rng = StdRng::seed_from_u64(seed);
            for level in [f.ctx.params().max_level(), 0] {
                let d = random_eval_poly(&f.ctx, level, &mut rng);
                let (l0, l1) = key_switch(&f.ctx, &d, &f.keys.relin, level);
                let (s0, s1) = key_switch_strict(&f.ctx, &d, &f.keys.relin, level);
                let (h0, h1) = key_switch_per_kernel(&f.ctx, &d, &f.keys.relin, level);
                prop_assert_eq!(
                    l0.flat(), s0.flat(),
                    "ks0 mismatch: shape={} level={} seed={}", name, level, seed
                );
                prop_assert_eq!(
                    l1.flat(), s1.flat(),
                    "ks1 mismatch: shape={} level={} seed={}", name, level, seed
                );
                // The per-kernel-canonicalising middle tier (the PR 2
                // pipeline) agrees with both.
                prop_assert_eq!(
                    h0.flat(), s0.flat(),
                    "per-kernel ks0 mismatch: shape={} level={} seed={}", name, level, seed
                );
                prop_assert_eq!(
                    h1.flat(), s1.flat(),
                    "per-kernel ks1 mismatch: shape={} level={} seed={}", name, level, seed
                );
                // The chain's outputs are canonical at the ciphertext
                // boundary — never a leaked lazy window.
                prop_assert_eq!(l0.reduction_state(), ReductionState::Canonical);
                prop_assert_eq!(l1.reduction_state(), ReductionState::Canonical);
            }
        }
    }
}

// ---------------------------------------------------------------------
// HMult tensor + relinearise + rescale: lazy chain == strict oracle.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn lazy_eval_mul_rescale_is_bit_identical_to_strict_oracle(seed in any::<u64>()) {
        for (name, f) in all_ckks_shapes() {
            let mut rng = StdRng::seed_from_u64(seed);
            let enc = Encoder::new(f.ctx.clone());
            let encryptor = Encryptor::new(f.ctx.clone());
            let eval = Evaluator::new(f.ctx.clone());
            let l = f.ctx.params().max_level();
            let x = encryptor.encrypt_sk(
                &enc.encode_real(&[0.5, -0.25, 0.125], l), &f.keys.secret, &mut rng);
            let y = encryptor.encrypt_sk(
                &enc.encode_real(&[0.25, 0.5, -1.0], l), &f.keys.secret, &mut rng);

            let lazy = eval.rescale(&eval.mul(&x, &y, &f.keys.relin));
            let strict = eval.rescale(&eval.mul_strict(&x, &y, &f.keys.relin));
            prop_assert_eq!(
                lazy.c0.flat(), strict.c0.flat(),
                "c0 mismatch: shape={} seed={}", name, seed
            );
            prop_assert_eq!(
                lazy.c1.flat(), strict.c1.flat(),
                "c1 mismatch: shape={} seed={}", name, seed
            );
        }
    }
}

// ---------------------------------------------------------------------
// TFHE external product: lazy accumulator == strict oracle over the
// paper's parameter sets.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn lazy_external_product_is_bit_identical_to_strict_oracle(seed in any::<u64>(), bit in 0u64..2) {
        for params in [TfheParams::set_i(), TfheParams::set_ii(), TfheParams::set_iii()] {
            let name = params.name;
            let ring = TfheRing::new(params.n, params.q_bits);
            let mut rng = StdRng::seed_from_u64(seed);
            let sk = GlweSecretKey::generate(params.k, params.n, &mut rng);
            let ggsw = Ggsw::encrypt_scalar(
                &ring, &sk, bit, params.lb, params.bg_log, params.glwe_noise,
                MulBackend::Ntt, &mut rng,
            );
            let msg: Vec<u64> = (0..params.n)
                .map(|i| (i as u64 % 8) * (ring.q() / 8))
                .collect();
            let glwe = GlweCiphertext::encrypt(&ring, &sk, &msg, params.glwe_noise, &mut rng);

            let lazy = ggsw.external_product(&ring, &glwe);
            let strict = ggsw.external_product_strict(&ring, &glwe);
            prop_assert_eq!(
                &lazy.body, &strict.body,
                "body mismatch: set={} seed={} bit={}", name, seed, bit
            );
            for (i, (lm, sm)) in lazy.mask.iter().zip(&strict.mask).enumerate() {
                prop_assert_eq!(
                    lm, sm, "mask[{}] mismatch: set={} seed={} bit={}", i, name, seed, bit
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Galois/rotation chain: the hoisted lazy automorphism pipeline
// (digit NTT -> Auto -> IP -> iNTT, all Lazy2p, one fold at ModDown)
// must be bit-identical to the strict oracle across every shape.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn lazy_rotation_is_bit_identical_to_strict_oracle(seed in any::<u64>()) {
        for (name, f) in all_ckks_shapes() {
            let mut rng = StdRng::seed_from_u64(seed);
            let enc = Encoder::new(f.ctx.clone());
            let encryptor = Encryptor::new(f.ctx.clone());
            let eval = Evaluator::new(f.ctx.clone());
            let l = f.ctx.params().max_level();
            let ct = encryptor.encrypt_sk(
                &enc.encode_real(&[0.5, -0.25, 0.75, 0.1], l), &f.keys.secret, &mut rng);
            let g_rot = trinity::math::galois::rotation_galois_element(1, f.ctx.n());
            let g_conj = trinity::math::galois::conjugation_galois_element(f.ctx.n());
            for (what, g) in [("rotate(1)", g_rot), ("conjugate", g_conj)] {
                let gk = &f.keys.galois[&g];
                let lazy = eval.apply_galois(&ct, g, gk);
                let strict = eval.apply_galois_strict(&ct, g, gk);
                prop_assert_eq!(
                    lazy.c0.flat(), strict.c0.flat(),
                    "c0 mismatch: shape={} op={} seed={}", name, what, seed
                );
                prop_assert_eq!(
                    lazy.c1.flat(), strict.c1.flat(),
                    "c1 mismatch: shape={} op={} seed={}", name, what, seed
                );
                // The chain folds at ModDown: outputs are canonical.
                prop_assert_eq!(lazy.c0.reduction_state(), ReductionState::Canonical);
                prop_assert_eq!(lazy.c1.reduction_state(), ReductionState::Canonical);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rotation-group properties at the ciphertext level (tiny shape, its
// own key set so the heavy shared fixtures stay lean).
// ---------------------------------------------------------------------

struct RotationFixture {
    ctx: Arc<CkksContext>,
    keys: KeySet,
}

fn rotation_fixture() -> &'static RotationFixture {
    static F: OnceLock<RotationFixture> = OnceLock::new();
    F.get_or_init(|| {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(0x207A7E);
        let keys = KeyGenerator::new(ctx.clone()).key_set(&[1, 2, 3, -1], &mut rng);
        RotationFixture { ctx, keys }
    })
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() < tol
}

/// `rotate(r1) ∘ rotate(r2) == rotate(r1 + r2)` modulo the slot count,
/// including the wraparound through zero (`(slots-1) + 1 ≡ 0`).
#[test]
fn rotation_composition_matches_single_rotation() {
    let f = rotation_fixture();
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    let enc = Encoder::new(f.ctx.clone());
    let encryptor = Encryptor::new(f.ctx.clone());
    let dec = Decryptor::new(f.ctx.clone());
    let eval = Evaluator::new(f.ctx.clone());
    let l = f.ctx.params().max_level();
    let slots = enc.slots() as i64;
    let x: Vec<f64> = (0..slots).map(|i| ((i * 3) % 19) as f64 / 19.0).collect();
    let ct = encryptor.encrypt_sk(&enc.encode_real(&x, l), &f.keys.secret, &mut rng);
    let gk = |r: i64| {
        let g = trinity::math::galois::rotation_galois_element(r, f.ctx.n());
        &f.keys.galois[&g]
    };

    // rotate(1) then rotate(2) == rotate(3).
    let composed = eval.rotate(&eval.rotate(&ct, 1, gk(1)), 2, gk(2));
    let direct = eval.rotate(&ct, 3, gk(3));
    let got_c = dec.decrypt(&composed, &f.keys.secret, &enc);
    let got_d = dec.decrypt(&direct, &f.keys.secret, &enc);
    for j in 0..slots as usize {
        let want = x[(j + 3) % slots as usize];
        assert!(close(got_c[j].re, want, 1e-3), "composed slot {j}");
        assert!(close(got_d[j].re, want, 1e-3), "direct slot {j}");
    }

    // Wrap through zero: rotate(slots - 1) == rotate(-1), and a further
    // rotate(1) returns to the original slots.
    let back_one = eval.rotate(&ct, slots - 1, gk(-1));
    let round_trip = eval.rotate(&back_one, 1, gk(1));
    let got_b = dec.decrypt(&back_one, &f.keys.secret, &enc);
    let got_r = dec.decrypt(&round_trip, &f.keys.secret, &enc);
    for j in 0..slots as usize {
        let want_b = x[(j + slots as usize - 1) % slots as usize];
        assert!(close(got_b[j].re, want_b, 1e-3), "wraparound slot {j}");
        assert!(close(got_r[j].re, x[j], 1e-3), "round trip slot {j}");
    }
}

/// `conjugate ∘ conjugate == id` on every shape (the conjugation key is
/// always in a key set).
#[test]
fn double_conjugation_is_identity() {
    for (name, f) in all_ckks_shapes() {
        let mut rng = StdRng::seed_from_u64(0x5EED_0004);
        let enc = Encoder::new(f.ctx.clone());
        let encryptor = Encryptor::new(f.ctx.clone());
        let dec = Decryptor::new(f.ctx.clone());
        let eval = Evaluator::new(f.ctx.clone());
        let l = f.ctx.params().max_level();
        let slots: Vec<trinity::math::Complex> = vec![
            trinity::math::Complex::new(0.5, 0.25),
            trinity::math::Complex::new(-0.25, -0.75),
            trinity::math::Complex::new(0.1, 0.9),
        ];
        let ct = encryptor.encrypt_sk(&enc.encode(&slots, l), &f.keys.secret, &mut rng);
        let g = trinity::math::galois::conjugation_galois_element(f.ctx.n());
        let once = eval.conjugate(&ct, &f.keys.galois[&g]);
        let twice = eval.conjugate(&once, &f.keys.galois[&g]);
        let got = dec.decrypt(&twice, &f.keys.secret, &enc);
        for (i, z) in slots.iter().enumerate() {
            assert!(close(got[i].re, z.re, 1e-3), "{name}: slot {i} re");
            assert!(close(got[i].im, z.im, 1e-3), "{name}: slot {i} im");
        }
    }
}

/// The eval-form automorphism is reduction-agnostic: applied lazily to a
/// `[0, 2p)` polynomial it preserves the window and commutes with the
/// deferred fold, bit for bit.
#[test]
fn automorphism_lazy_preserves_window_and_commutes_with_fold() {
    let f = tiny();
    let mut rng = StdRng::seed_from_u64(0x5EED_0005);
    let perms = f.ctx.galois();
    for g in [
        trinity::math::galois::rotation_galois_element(1, f.ctx.n()),
        trinity::math::galois::rotation_galois_element(-3, f.ctx.n()),
        trinity::math::galois::conjugation_galois_element(f.ctx.n()),
    ] {
        let level = f.ctx.params().max_level();
        let canonical = random_eval_poly(&f.ctx, level, &mut rng);

        // Lazy chain: lift to [0, 2p) via a lazy square, permute
        // lazily, then fold once.
        let mut lazy = canonical.clone();
        lazy.mul_assign_pointwise_lazy(&canonical);
        assert_eq!(lazy.reduction_state(), ReductionState::Lazy2p);
        lazy.automorphism_lazy(g, perms);
        assert_eq!(
            lazy.reduction_state(),
            ReductionState::Lazy2p,
            "slot permutation must preserve the lazy window"
        );
        lazy.canonicalize();

        // Strict chain: canonical square, canonical permute.
        let mut strict = canonical.clone();
        strict.mul_assign_pointwise(&canonical);
        strict.automorphism(g, perms);

        assert_eq!(lazy.flat(), strict.flat(), "g={g}");

        // And on canonical input the lazy permutation IS the canonical
        // permutation (state preserved either way).
        let mut a = canonical.clone();
        a.automorphism_lazy(g, perms);
        assert_eq!(a.reduction_state(), ReductionState::Canonical);
        let mut b = canonical.clone();
        b.automorphism(g, perms);
        assert_eq!(a.flat(), b.flat(), "g={g}");
    }
}

// ---------------------------------------------------------------------
// ReductionState transitions through the public chain APIs.
// ---------------------------------------------------------------------

#[test]
fn reduction_state_transitions_through_hmult_chain() {
    let f = tiny();
    let mut rng = StdRng::seed_from_u64(7101);
    let enc = Encoder::new(f.ctx.clone());
    let encryptor = Encryptor::new(f.ctx.clone());
    let eval = Evaluator::new(f.ctx.clone());
    let l = f.ctx.params().max_level();
    let x = encryptor.encrypt_sk(&enc.encode_real(&[0.5], l), &f.keys.secret, &mut rng);

    // Fresh ciphertexts are canonical.
    assert_eq!(x.c0.reduction_state(), ReductionState::Canonical);
    assert_eq!(x.c1.reduction_state(), ReductionState::Canonical);

    // The lazy tensor hands over Lazy2p components...
    let tensor = eval.mul_no_relin(&x, &x);
    assert_eq!(tensor.d0.reduction_state(), ReductionState::Lazy2p);
    assert_eq!(tensor.d1.reduction_state(), ReductionState::Lazy2p);
    assert_eq!(tensor.d2.reduction_state(), ReductionState::Lazy2p);

    // ...the strict oracle stays canonical...
    let tensor_strict = eval.mul_no_relin_strict(&x, &x);
    assert_eq!(
        tensor_strict.d0.reduction_state(),
        ReductionState::Canonical
    );

    // ...and relinearisation folds at the ciphertext boundary.
    let relin = eval.relinearize(&tensor, &f.keys.relin);
    assert_eq!(relin.c0.reduction_state(), ReductionState::Canonical);
    assert_eq!(relin.c1.reduction_state(), ReductionState::Canonical);

    // An explicitly canonicalised tensor is indistinguishable from the
    // strict one.
    let mut folded = tensor.clone();
    folded.canonicalize();
    assert_eq!(folded.d0.reduction_state(), ReductionState::Canonical);
    assert_eq!(folded.d0.flat(), tensor_strict.d0.flat());
    assert_eq!(folded.d1.flat(), tensor_strict.d1.flat());
    assert_eq!(folded.d2.flat(), tensor_strict.d2.flat());

    // Rescale of the (canonical) relinearised ciphertext is canonical.
    let rescaled = eval.rescale(&relin);
    assert_eq!(rescaled.c0.reduction_state(), ReductionState::Canonical);
    assert_eq!(rescaled.c1.reduction_state(), ReductionState::Canonical);
}

#[test]
fn reduction_state_transitions_at_poly_level() {
    let f = tiny();
    let mut rng = StdRng::seed_from_u64(7102);
    let mut p = random_eval_poly(&f.ctx, 1, &mut rng);
    assert_eq!(p.reduction_state(), ReductionState::Canonical);

    // Eval -> Coeff lazily: Lazy2p until canonicalize().
    p.to_coeff_lazy();
    assert_eq!(p.reduction_state(), ReductionState::Lazy2p);

    // Lazy -> Eval through the canonicalising transform: Canonical.
    p.to_eval();
    assert_eq!(p.reduction_state(), ReductionState::Canonical);

    // Lazy pointwise ops stay lazy; canonicalize() folds.
    let q = p.clone();
    p.mul_assign_pointwise_lazy(&q);
    assert_eq!(p.reduction_state(), ReductionState::Lazy2p);
    p.add_assign_lazy(&q);
    assert_eq!(p.reduction_state(), ReductionState::Lazy2p);
    p.canonicalize();
    assert_eq!(p.reduction_state(), ReductionState::Canonical);
}

// ---------------------------------------------------------------------
// Deterministic-seed noise regressions: the lazy chain must not change
// measured noise by a single bit, and the measurement must stay inside
// the a-priori estimator band.
// ---------------------------------------------------------------------

#[test]
fn noise_after_lazy_keyswitch_rescale_matches_strict_exactly() {
    for (name, f) in all_ckks_shapes() {
        let mut rng = StdRng::seed_from_u64(0x5EED_0001);
        let enc = Encoder::new(f.ctx.clone());
        let encryptor = Encryptor::new(f.ctx.clone());
        let dec = Decryptor::new(f.ctx.clone());
        let eval = Evaluator::new(f.ctx.clone());
        let l = f.ctx.params().max_level();
        let slots = vec![0.5, -0.25, 0.75];
        let ct = encryptor.encrypt_sk(&enc.encode_real(&slots, l), &f.keys.secret, &mut rng);

        let lazy = eval.rescale(&eval.mul(&ct, &ct, &f.keys.relin));
        let strict = eval.rescale(&eval.mul_strict(&ct, &ct, &f.keys.relin));

        // Bit-identical ciphertexts decrypt to bit-identical slots: the
        // noise of the two chains is *exactly* equal.
        let got_lazy = dec.decrypt(&lazy, &f.keys.secret, &enc);
        let got_strict = dec.decrypt(&strict, &f.keys.secret, &enc);
        for (i, (a, b)) in got_lazy.iter().zip(&got_strict).enumerate() {
            assert_eq!(
                a.re.to_bits(),
                b.re.to_bits(),
                "{name}: slot {i} re differs"
            );
            assert_eq!(
                a.im.to_bits(),
                b.im.to_bits(),
                "{name}: slot {i} im differs"
            );
        }

        // And the value is still correct (the chain did a real HMult).
        for (i, &want) in slots.iter().enumerate() {
            assert!(
                (got_lazy[i].re - want * want).abs() < 5e-2,
                "{name}: slot {i}: {} vs {}",
                got_lazy[i].re,
                want * want
            );
        }
    }
}

#[test]
fn noise_after_lazy_chain_stays_within_estimator_band() {
    // The documented +/- band of ckks::noise's central-limit model,
    // as in the crate's own noise tests.
    for (name, f) in all_ckks_shapes() {
        let mut rng = StdRng::seed_from_u64(0x5EED_0002);
        let enc = Encoder::new(f.ctx.clone());
        let encryptor = Encryptor::new(f.ctx.clone());
        let eval = Evaluator::new(f.ctx.clone());
        let model = NoiseModel::new(&f.ctx);
        let l = f.ctx.params().max_level();
        let slots: Vec<f64> = (0..8).map(|i| (i as f64 / 8.0) - 0.5).collect();
        let expect: Vec<trinity::math::Complex> = slots
            .iter()
            .map(|&v| trinity::math::Complex::new(v * v, 0.0))
            .collect();
        let ct = encryptor.encrypt_sk(&enc.encode_real(&slots, l), &f.keys.secret, &mut rng);
        let sq = eval.rescale(&eval.mul(&ct, &ct, &f.keys.relin));
        let measured =
            trinity::ckks::measure_noise_bits(&f.ctx, &sq, &expect, &f.keys.secret, &enc);
        let fresh = model.fresh();
        let predicted = model.hmult_rescale(fresh, fresh, 1.0, 1.0).bits;
        assert!(
            (measured - predicted).abs() < 8.0,
            "{name}: measured {measured:.1} vs predicted {predicted:.1}"
        );
        // The result is usable: noise comfortably below the scale.
        assert!(
            measured < f.ctx.params().scale_bits as f64 - 8.0,
            "{name}: noise {measured:.1} too close to scale"
        );
    }
}

// ---------------------------------------------------------------------
// Shrinking smoke: lazy-chain property failures minimise (satellite
// regression for the vendored proptest's new shrinking support).
// ---------------------------------------------------------------------

#[test]
fn lazy_chain_property_failures_minimise() {
    // Drive the runner directly on a property shaped like the suites
    // above (an integer seed) whose failure boundary is known: the
    // minimised case must reach the boundary, demonstrating that a
    // failing lazy-chain case would be reported minimal.
    let config = proptest::ProptestConfig::with_cases(4);
    let err = std::panic::catch_unwind(|| {
        proptest::run_property(
            &config,
            "lazy_chains::shrink_smoke",
            0u64..1 << 40,
            |seed| {
                if seed >= 12_345 {
                    Err(proptest::TestCaseError::Fail(format!("seed {seed} fails")))
                } else {
                    Ok(())
                }
            },
        );
    })
    .expect_err("property must fail");
    let msg = err
        .downcast_ref::<String>()
        .expect("formatted panic")
        .clone();
    assert!(msg.contains("seed 12345 fails"), "not minimised: {msg}");
    assert!(msg.contains("minimised after"), "no shrink report: {msg}");
}
