//! Cross-backend bit-identity of the production FHE chains.
//!
//! The lazy-chain suite (`tests/lazy_chains.rs`) proves lazy == strict
//! under whatever backend the process resolved; the CI matrix re-runs
//! it under `scalar`, `lanes` and `threaded`. This file closes the
//! remaining gap **in one process**: it swaps the process-wide backend
//! between `scalar`, `lanes` and `threaded` with [`kernel::force`] and
//! asserts that CKKS keyswitch, HMult (+rescale), rotation, and the
//! TFHE external product produce bit-identical ciphertexts under all
//! three — i.e. backend choice is unobservable, not merely
//! correct-up-to-the-oracle.
//!
//! `force` swaps global state, so every test serialises on one mutex
//! and restores the previous backend before releasing it.

use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use rand::rngs::StdRng;
use rand::SeedableRng;
use trinity::ckks::{
    key_switch, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator, KeySet,
};
use trinity::math::kernel::{self, KernelBackend};
use trinity::math::{galois, sampler, Representation, RnsPoly};
use trinity::tfhe::{Ggsw, GlweCiphertext, GlweSecretKey, MulBackend, TfheParams, TfheRing};

/// Serialises `kernel::force` swaps across the tests of this binary.
static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// The three production backends under comparison (threaded with 3
/// lanes so dispatch genuinely fans out where row sizes allow).
fn backends() -> [&'static dyn KernelBackend; 3] {
    [
        kernel::by_name("scalar").unwrap(),
        kernel::by_name("lanes").unwrap(),
        kernel::threaded(Some(3)),
    ]
}

/// Runs `work` once per backend with the process-wide dispatch forced
/// to it, returning the per-backend results; restores the previously
/// active backend afterwards.
fn under_each_backend<T>(mut work: impl FnMut() -> T) -> Vec<(&'static str, T)> {
    let _guard = FORCE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let previous = kernel::active();
    let out = backends()
        .iter()
        .map(|b| {
            kernel::force(*b);
            (b.name(), work())
        })
        .collect();
    kernel::force(previous);
    out
}

fn assert_all_identical(results: Vec<(&'static str, Vec<u64>)>, what: &str) {
    let (base_name, base) = &results[0];
    for (name, got) in &results {
        assert_eq!(
            got, base,
            "{what}: backend {name} diverges from {base_name}"
        );
    }
}

struct CkksFixture {
    ctx: Arc<CkksContext>,
    keys: KeySet,
}

/// One shared keygen per shape (the host has one CPU; keygen dispatches
/// through whatever backend is active, which is fine — keys are
/// canonical data, and every backend is bit-identical anyway).
fn test_shape() -> &'static CkksFixture {
    static F: OnceLock<CkksFixture> = OnceLock::new();
    F.get_or_init(|| {
        let ctx = CkksContext::new(CkksParams::test_params());
        let mut rng = StdRng::seed_from_u64(0x1DE27171);
        let keys = KeyGenerator::new(ctx.clone()).key_set(&[1], &mut rng);
        CkksFixture { ctx, keys }
    })
}

#[test]
fn keyswitch_is_bit_identical_across_backends() {
    let f = test_shape();
    let l = f.ctx.params().max_level();
    let mut rng = StdRng::seed_from_u64(0x5EED0);
    let basis = f.ctx.level_basis(l).clone();
    let mut flat = Vec::with_capacity(basis.len() * f.ctx.n());
    for m in basis.moduli() {
        flat.extend(sampler::uniform_residues(&mut rng, m, f.ctx.n()));
    }
    let d = RnsPoly::from_flat(basis, flat, Representation::Eval);

    let results = under_each_backend(|| {
        let (ks0, ks1) = key_switch(&f.ctx, &d, &f.keys.relin, l);
        let mut out = ks0.flat().to_vec();
        out.extend_from_slice(ks1.flat());
        out
    });
    assert_all_identical(results, "ckks key_switch");
}

#[test]
fn hmult_rescale_and_rotation_are_bit_identical_across_backends() {
    let f = test_shape();
    let enc = Encoder::new(f.ctx.clone());
    let encryptor = Encryptor::new(f.ctx.clone());
    let eval = Evaluator::new(f.ctx.clone());
    let l = f.ctx.params().max_level();
    let mut rng = StdRng::seed_from_u64(0x5EED1);
    let vals: Vec<f64> = (0..8).map(|i| 0.1 * i as f64 - 0.3).collect();
    let x = encryptor.encrypt_sk(&enc.encode_real(&vals, l), &f.keys.secret, &mut rng);
    let y = encryptor.encrypt_sk(&enc.encode_real(&[0.25; 8], l), &f.keys.secret, &mut rng);
    let g = galois::rotation_galois_element(1, f.ctx.n());
    let gk = &f.keys.galois[&g];

    let results = under_each_backend(|| {
        let prod = eval.rescale(&eval.mul(&x, &y, &f.keys.relin));
        let rot = eval.apply_galois(&x, g, gk);
        let mut out = prod.c0.flat().to_vec();
        out.extend_from_slice(prod.c1.flat());
        out.extend_from_slice(rot.c0.flat());
        out.extend_from_slice(rot.c1.flat());
        out
    });
    assert_all_identical(results, "ckks hmult+rescale+rotation");
}

/// The hoisted rotation batch: one shared ModUp feeding several
/// rotations must (a) match the sequential `apply_galois` bit for bit
/// *within* each backend, and (b) be bit-identical *across* backends —
/// the pooled BConv/digit-NTT front half dispatches through the worker
/// pool on `threaded`, and that must be unobservable.
#[test]
fn hoisted_rotations_are_bit_identical_across_backends() {
    let f = test_shape();
    let enc = Encoder::new(f.ctx.clone());
    let encryptor = Encryptor::new(f.ctx.clone());
    let eval = Evaluator::new(f.ctx.clone());
    let l = f.ctx.params().max_level();
    let mut rng = StdRng::seed_from_u64(0x5EED3);
    let rotations = [1i64, 2, -1];
    let keys = KeyGenerator::new(f.ctx.clone()).key_set(&rotations, &mut rng);
    let vals: Vec<f64> = (0..8).map(|i| 0.05 * i as f64 - 0.2).collect();
    let x = encryptor.encrypt_sk(&enc.encode_real(&vals, l), &keys.secret, &mut rng);

    let results = under_each_backend(|| {
        let hoisted = eval.hoist_rotations(&x);
        let mut out = Vec::new();
        for r in rotations {
            let g = galois::rotation_galois_element(r, f.ctx.n());
            let gk = &keys.galois[&g];
            let h = eval.rotate_hoisted(&x, &hoisted, r, gk);
            let s = eval.rotate(&x, r, gk);
            assert_eq!(h.c0.flat(), s.c0.flat(), "hoisted != sequential c0, r={r}");
            assert_eq!(h.c1.flat(), s.c1.flat(), "hoisted != sequential c1, r={r}");
            out.extend_from_slice(h.c0.flat());
            out.extend_from_slice(h.c1.flat());
        }
        out
    });
    assert_all_identical(results, "ckks hoisted rotation batch");
}

#[test]
fn tfhe_external_product_is_bit_identical_across_backends() {
    let params = TfheParams::set_i();
    let ring = TfheRing::new(params.n, params.q_bits);
    let mut rng = StdRng::seed_from_u64(0x5EED2);
    let sk = GlweSecretKey::generate(params.k, params.n, &mut rng);
    let ggsw = Ggsw::encrypt_scalar(
        &ring,
        &sk,
        1,
        params.lb,
        params.bg_log,
        params.glwe_noise,
        MulBackend::Ntt,
        &mut rng,
    );
    let msg: Vec<u64> = (0..params.n)
        .map(|i| (i as u64 % 8) * (ring.q() / 8))
        .collect();
    let glwe = GlweCiphertext::encrypt(&ring, &sk, &msg, params.glwe_noise, &mut rng);

    let results = under_each_backend(|| {
        let out = ggsw.external_product(&ring, &glwe);
        let mut flat = out.body.clone();
        for m in &out.mask {
            flat.extend_from_slice(m);
        }
        flat
    });
    assert_all_identical(results, "tfhe external_product");
}
