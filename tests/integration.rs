//! Cross-crate integration tests: full pipelines spanning the
//! functional layer (CKKS + TFHE + conversion) and consistency checks
//! between the functional layer and the accelerator model.

use rand::rngs::StdRng;
use rand::SeedableRng;
use trinity::ckks::{
    CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator,
};
use trinity::convert::{extract_lwes, extracted_key, RlwePacker};
use trinity::math::Complex;
use trinity::tfhe::{ClientKey, MulBackend, ServerKey, TfheContext, TfheParams};

/// A deep CKKS pipeline: encode -> encrypt -> (mul, rotate, add) chain
/// across several levels -> decrypt, checked against the plaintext
/// computation.
#[test]
fn ckks_pipeline_multi_level() {
    let mut rng = StdRng::seed_from_u64(201);
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let keys = KeyGenerator::new(ctx.clone()).key_set(&[1, 2], &mut rng);
    let enc = Encoder::new(ctx.clone());
    let encryptor = Encryptor::new(ctx.clone());
    let eval = Evaluator::new(ctx.clone());
    let dec = Decryptor::new(ctx.clone());

    let l = ctx.params().max_level();
    let x: Vec<f64> = (0..16).map(|i| 0.1 + (i as f64) * 0.05).collect();
    let ct = encryptor.encrypt_sk(&enc.encode_real(&x, l), &keys.secret, &mut rng);

    // y = (x * x) rotated by 1, plus x.
    let sq = eval.rescale(&eval.mul(&ct, &ct, &keys.relin));
    let g1 = trinity::math::galois::rotation_galois_element(1, ctx.n());
    let rot = eval.rotate(&sq, 1, &keys.galois[&g1]);
    let x_low = eval.mod_down_to(&ct, rot.level);
    // Scales differ slightly (rescale by a non-power-of-two prime);
    // re-encrypting at the rotated scale aligns them.
    let x_aligned = encryptor.encrypt_sk(
        &enc.encode_at_scale(
            &x.iter().map(|&v| Complex::new(v, 0.0)).collect::<Vec<_>>(),
            rot.level,
            rot.scale,
        ),
        &keys.secret,
        &mut rng,
    );
    let _ = x_low;
    let out_ct = eval.add(&rot, &x_aligned);
    let out = dec.decrypt(&out_ct, &keys.secret, &enc);

    for i in 0..15 {
        let expect = x[i + 1] * x[i + 1] + x[i];
        assert!(
            (out[i].re - expect).abs() < 2e-2,
            "slot {i}: {} vs {expect}",
            out[i].re
        );
    }
}

/// TFHE: a bootstrapped 2-bit multiplier circuit (AND + XOR network).
#[test]
fn tfhe_two_bit_multiplier() {
    let mut rng = StdRng::seed_from_u64(202);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
    let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);

    for a in 0u8..4 {
        for b in 0u8..4 {
            let a0 = ck.encrypt_bit(a & 1 == 1, &mut rng);
            let a1 = ck.encrypt_bit(a & 2 == 2, &mut rng);
            let b0 = ck.encrypt_bit(b & 1 == 1, &mut rng);
            let b1 = ck.encrypt_bit(b & 2 == 2, &mut rng);
            // p = a * b (2x2 -> 4 bits, schoolbook).
            let p0 = sk.and(&a0, &b0);
            let t1 = sk.and(&a1, &b0);
            let t2 = sk.and(&a0, &b1);
            let p1 = sk.xor(&t1, &t2);
            let c1 = sk.and(&t1, &t2);
            let t3 = sk.and(&a1, &b1);
            let p2 = sk.xor(&t3, &c1);
            let p3 = sk.and(&t3, &c1);
            let got = (ck.decrypt_bit(&p0) as u8)
                | ((ck.decrypt_bit(&p1) as u8) << 1)
                | ((ck.decrypt_bit(&p2) as u8) << 2)
                | ((ck.decrypt_bit(&p3) as u8) << 3);
            assert_eq!(got, a * b, "{a} * {b}");
        }
    }
}

/// Full conversion round trip at the integration level: CKKS
/// coefficients -> LWE extraction -> repack -> CKKS, with a homomorphic
/// CKKS rescale applied to the repacked ciphertext.
#[test]
fn conversion_roundtrip_with_ckks_postprocessing() {
    let mut rng = StdRng::seed_from_u64(203);
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let encryptor = Encryptor::new(ctx.clone());
    let dec = Decryptor::new(ctx.clone());
    let eval = Evaluator::new(ctx.clone());

    let n = ctx.n();
    let q0 = ctx.level_basis(0).modulus(0).value();
    let delta = (q0 / (64 * n as u64)) as i64;
    let nslot = 4usize;
    let messages = [2i64, -1, 3, -4];
    let mut coeffs = vec![0i64; n];
    for (j, &m) in messages.iter().enumerate() {
        coeffs[j] = m * delta;
    }
    let mut poly = trinity::math::RnsPoly::from_signed_coeffs(ctx.level_basis(0).clone(), &coeffs);
    poly.to_eval();
    let pt = trinity::ckks::Plaintext {
        poly,
        scale: delta as f64,
        level: 0,
    };
    let ct = encryptor.encrypt_sk(&pt, &sk, &mut rng);

    let lwes = extract_lwes(&ctx, &ct, nslot);
    // Sanity: extracted LWEs decrypt correctly.
    let lwe_key = extracted_key(&sk);
    let q = ctx.level_basis(0).modulus(0);
    for (j, lwe) in lwes.iter().enumerate() {
        let got = (q.to_centered(lwe.phase(q, &lwe_key)) as f64 / delta as f64).round() as i64;
        assert_eq!(got, messages[j]);
    }

    // Repack at level 2, then rescale down (a real CKKS op on converted
    // data: divides the scale by q_2).
    let packer = RlwePacker::new(ctx.clone(), &sk, 2, &mut rng);
    let packed = packer.convert(&lwes, delta as f64);
    assert_eq!(packed.level, 2);
    let rescaled = eval.rescale(&packed);
    assert_eq!(rescaled.level, 1);

    let out = dec.decrypt_poly(&rescaled, &sk);
    let vals = out.to_centered_f64();
    let stride = n / nslot;
    for (j, &m) in messages.iter().enumerate() {
        let got = vals[j * stride] / rescaled.scale;
        assert!(
            (got - m as f64).abs() < 0.02,
            "coeff {j}: {got} vs {m} after rescale"
        );
    }
}

/// The functional keyswitch and the workload model agree on kernel
/// counts: the number of NTTs the DAG builder emits matches what the
/// functional hybrid keyswitch actually performs.
#[test]
fn workload_model_matches_functional_keyswitch() {
    // Functional side: tiny params, L = 3, dnum = 2 -> at level 3,
    // beta = 2 digits, ext = 3 + 1 + 2 = 6 limbs.
    let params = CkksParams::tiny_params();
    let l = params.max_level();
    let alpha = params.alpha();
    let beta = params.beta_at_level(l);
    let ext = l + 1 + alpha;

    // Model side with the same shape.
    let shape = trinity::workloads::CkksShape {
        n: params.n,
        levels: l,
        dnum: params.dnum,
        word_bytes: 4.5,
    };
    assert_eq!(shape.alpha(), alpha);
    assert_eq!(shape.beta_at(l), beta);
    assert_eq!(shape.ext_limbs(l), ext);

    let mut g = trinity::accel::kernel::KernelGraph::new();
    trinity::workloads::ckks_ops::keyswitch(
        &mut g,
        &shape,
        l,
        &[],
        trinity::workloads::KeySwitchOpts::default(),
    );
    let fwd_ntts = g
        .kernels()
        .iter()
        .filter(|k| matches!(k.kind, trinity::accel::kernel::KernelKind::Ntt { .. }))
        .count();
    let inv_ntts = g
        .kernels()
        .iter()
        .filter(|k| matches!(k.kind, trinity::accel::kernel::KernelKind::Intt { .. }))
        .count();
    // The functional implementation NTTs beta x ext rows on ModUp, 2 x
    // ext on the accumulators (inverse), and 2 x (l+1) on the ModDown
    // outputs — the DAG must match exactly.
    assert_eq!(fwd_ntts, beta * ext + 2 * (l + 1));
    assert_eq!(inv_ntts, 2 * ext);
}

/// NTT-based and FFT-based TFHE agree on every gate (the paper's
/// substitution is behaviour-preserving).
#[test]
fn ntt_and_fft_backends_agree() {
    let mut rng = StdRng::seed_from_u64(204);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
    let sk_ntt = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
    let sk_fft = ServerKey::generate(&ck, MulBackend::Fft, &mut rng);
    for a in [false, true] {
        for b in [false, true] {
            let ca = ck.encrypt_bit(a, &mut rng);
            let cb = ck.encrypt_bit(b, &mut rng);
            assert_eq!(
                ck.decrypt_bit(&sk_ntt.nand(&ca, &cb)),
                ck.decrypt_bit(&sk_fft.nand(&ca, &cb)),
                "NAND({a},{b})"
            );
        }
    }
}
