//! # Trinity — a general-purpose FHE accelerator, reproduced in Rust
//!
//! This facade crate re-exports the whole workspace reproducing
//! *"Trinity: A General Purpose FHE Accelerator"* (MICRO 2024):
//!
//! * [`math`] (`fhe-math`) — modular arithmetic, NTT (reference /
//!   constant-geometry / four-step), FFT, RNS and base conversion.
//! * [`ckks`] (`fhe-ckks`) — RNS-CKKS: encoding, hybrid keyswitch
//!   (Algorithm 1), rotations, rescaling, BSGS linear transforms.
//! * [`tfhe`] (`fhe-tfhe`) — TFHE: programmable bootstrapping
//!   (Algorithm 2) with both NTT and FFT external products, gates.
//! * [`convert`] (`fhe-convert`) — scheme conversion (Algorithms 3-5):
//!   SampleExtract, ring embedding, PackLWEs, field trace.
//! * [`accel`] (`trinity-core`) — the accelerator architecture model:
//!   components, clusters, mapping policies, cycle simulation,
//!   area/power.
//! * [`workloads`] (`trinity-workloads`) — kernel DAGs for every paper
//!   benchmark.
//! * [`compiler`] (`trinity-compiler`) — the Fig. 8 workload-allocation
//!   pipeline: FHE-op IR, automatic bootstrap insertion, lowering to
//!   scheduled kernel flows.
//! * [`service`] (`trinity-service`) — the multi-tenant serving core:
//!   QoS-laned job queue, byte-budgeted session key cache, and
//!   cross-request keyswitch coalescing with a JSONL audit trail.
//!
//! # Quickstart
//!
//! ```
//! use trinity::ckks::{CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let ctx = CkksContext::new(CkksParams::tiny_params());
//! let keys = KeyGenerator::new(ctx.clone()).key_set(&[], &mut rng);
//! let enc = Encoder::new(ctx.clone());
//! let encryptor = Encryptor::new(ctx.clone());
//! let eval = Evaluator::new(ctx.clone());
//! let dec = Decryptor::new(ctx.clone());
//!
//! let l = ctx.params().max_level();
//! let ct = encryptor.encrypt_sk(&enc.encode_real(&[1.5, -2.0], l), &keys.secret, &mut rng);
//! let doubled = eval.add(&ct, &ct);
//! let out = dec.decrypt(&doubled, &keys.secret, &enc);
//! assert!((out[0].re - 3.0).abs() < 1e-2);
//! ```
//!
//! See `examples/` for end-to-end scenarios including the hybrid
//! encrypted-database query that motivates the paper.

pub use fhe_ckks as ckks;
pub use fhe_convert as convert;
pub use fhe_math as math;
pub use fhe_tfhe as tfhe;
pub use trinity_compiler as compiler;
pub use trinity_core as accel;
pub use trinity_service as service;
pub use trinity_workloads as workloads;
